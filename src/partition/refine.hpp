#pragma once
// p-way Kernighan–Lin refinement with the gain model of Section 9.
//
// The gain of moving vertex v from subset f to subset t is
//   gain = [conn(v,t) − conn(v,f)]                              (cut term)
//        + α·w(v)·([f ≠ home(v)] − [t ≠ home(v)])               (migration)
//        + β·2·w(v)·(W_f − W_t − w(v))                          (balance)
// which is exactly the decrease of C_repartition (Eq. 1) caused by the move.
// With α = β = 0 and a hard balance constraint this degenerates to the
// classic multiprocessor KL/FM used inside Multilevel-KL; with the paper's
// α = 0.1, β = 0.8 and no hard constraint it is PNR's repartitioning pass.
//
// Mechanics follow the paper: a p×p table of gain-priority queues, best head
// selected globally, moved vertices locked for the rest of the pass,
// neighbor gains updated after every move, passes with hill-climbing and
// rollback to the best prefix, repeated until a pass yields no improvement.
//
// The engine is *incremental* (the dominant hot path of the pipeline):
// conn(v, ·) rows are built once per refine call and kept exact with O(deg)
// delta updates per applied move (partition::ConnTable); each pass seeds the
// queue table only from the boundary set (vertices with a cross-partition
// edge, plus away-from-home vertices when α > 0 — interior vertices have no
// candidate moves), maintained incrementally as moves and rollbacks execute;
// and candidate gains are re-keyed in place, so with β = 0 a popped entry's
// gain is exact and is applied without any recompute. Only the β term, which
// couples every gain to the global subset weights, still needs a (cheap,
// table-driven) verification on pop.

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"
#include "partition/conn.hpp"
#include "partition/partition.hpp"
#include "util/rng.hpp"

namespace pnr::part {

struct RefineOptions {
  double alpha = 0.0;  ///< migration cost weight (needs `home`)
  double beta = 0.0;   ///< balance cost weight (soft balance)
  /// Previous assignment Π^{t-1}; required when alpha > 0.
  const std::vector<PartId>* home = nullptr;
  /// Enforce W_t + w ≤ (1+imbalance_tol)·avg as a hard constraint. Standard
  /// partitioners use this; PNR relies on the β term instead.
  bool hard_balance = true;
  double imbalance_tol = 0.03;
  int max_passes = 8;
  /// Abandon a pass after this many consecutive non-improving moves
  /// (0 = choose max(128, n/16) automatically).
  int abandon_after = 0;
  /// Per-part target weights (size num_parts). When null every part targets
  /// total/p. Recursive bisection with unequal halves (odd p) sets this.
  const std::vector<Weight>* targets = nullptr;
  /// Test hook: after every applied move, cross-check the incremental conn
  /// rows, boundary set, and subset weights against a from-scratch recompute
  /// (aborts on divergence). O(n + E) per move — never enable outside tests.
  bool check_invariants = false;
};

struct RefineResult {
  int passes = 0;
  double total_gain = 0.0;     ///< decrease of the objective over all passes
  std::int64_t moves = 0;      ///< net vertex moves kept after rollbacks
  // Structural statistics of the incremental engine (mirrored into the
  // kl.* prof counters by refine_partition).
  std::int64_t boundary_seeded = 0;   ///< vertices seeded across all passes
  std::int64_t queue_pushes = 0;      ///< new entries inserted into the table
  std::int64_t stale_pops = 0;        ///< pops re-keyed by the β verification
  std::int64_t gain_recomputes = 0;   ///< on-pop gain recomputations (β > 0)
};

/// `shared`, when given, carries exact connectivity state along the
/// per-level rebalance → refine chain: a valid conn table is adopted instead
/// of rebuilt, a valid quotient graph is kept exact under every applied move
/// (rollbacks included), and both are handed back still exact on return.
RefineResult refine_partition(const Graph& g, Partition& pi,
                              const RefineOptions& options,
                              SharedConnState* shared = nullptr);

}  // namespace pnr::part
