#pragma once
// Partition representation and the three cost measures of the paper's
// repartitioning objective (Section 9, Eq. 1):
//   C_repartition(Π, Π̂, α, β) = C_cut(Π̂) + α·C_migrate(Π, Π̂) + β·C_balance(Π̂)

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"

namespace pnr::part {

using PartId = std::int32_t;
using graph::Graph;
using graph::VertexId;
using graph::Weight;

/// An assignment of every graph vertex to one of `num_parts` subsets.
struct Partition {
  PartId num_parts = 0;
  std::vector<PartId> assign;

  Partition() = default;
  Partition(PartId p, std::vector<PartId> a)
      : num_parts(p), assign(std::move(a)) {}

  bool valid_for(const Graph& g) const;
};

/// Total weight of edges whose endpoints lie in different subsets.
Weight cut_size(const Graph& g, const Partition& pi);

/// Per-subset vertex weight sums.
std::vector<Weight> part_weights(const Graph& g, const Partition& pi);

/// max_i(weight_i) / (total/p) − 1; the paper's ε. 0 for an ideal partition.
double imbalance(const Graph& g, const Partition& pi);

/// Σ_v vwgt(v)·[old.assign[v] != new.assign[v]] — the weight (i.e. number of
/// fine elements, since weights are leaf counts) that must migrate.
Weight migration_cost(const Graph& g, const Partition& old_pi,
                      const Partition& new_pi);

/// Σ_i (weight_i − total/p)² — the paper's squared-deviation balance term.
double balance_cost(const Graph& g, const Partition& pi);

/// The combined objective of Eq. 1.
double repartition_cost(const Graph& g, const Partition& old_pi,
                        const Partition& new_pi, double alpha, double beta);

/// Number of vertices whose subset differs between the two partitions
/// (counts vertices, not weight; used to report "elements moved" when the
/// graph is a fine dual graph with unit weights).
std::int64_t moved_vertices(const Partition& old_pi, const Partition& new_pi);

/// True iff every subset is non-empty.
bool all_parts_used(const Graph& g, const Partition& pi);

}  // namespace pnr::part
