#pragma once
// Greedy rebalancing: after adaptation some subsets exceed their target
// weight; this pass drains them by repeatedly moving the boundary vertex
// with the best cut(+migration) gain from the most overweight subset to its
// lightest adjacent subset, until every subset fits (1+tol)·target. Unlike
// KL these moves are unconditional — the imbalance itself, not the combined
// objective, decides when to stop — which is what makes the subsequent
// hard-constrained KL pass start from a feasible point. The number of moves
// is close to the Section 8 lower estimate (the excess weight has to go
// somewhere), which is why PNR's migration stays near that bound.

#include <vector>

#include "partition/conn.hpp"
#include "partition/partition.hpp"

namespace pnr::part {

struct RebalanceOptions {
  double tol = 0.005;  ///< stop when max weight ≤ (1+tol)·target
  double alpha = 0.0;  ///< migration weight in the vertex-choice gain
  const std::vector<PartId>* home = nullptr;
  /// Per-part targets; total/p when null.
  const std::vector<Weight>* targets = nullptr;
  /// Safety valve for pathological inputs.
  std::int64_t max_moves = 0;  ///< 0 = 8·n
};

struct RebalanceResult {
  std::int64_t moves = 0;
  Weight weight_moved = 0;
  bool balanced = false;  ///< all subsets within tolerance at exit
};

/// `shared`, when given, carries the exact conn table and quotient graph
/// across the per-level rebalance → refine chain: valid state is adopted
/// instead of rebuilt, and the (still exact) state is handed back on return.
RebalanceResult rebalance_greedy(const Graph& g, Partition& pi,
                                 const RebalanceOptions& options = {},
                                 SharedConnState* shared = nullptr);

}  // namespace pnr::part
