#pragma once
// Greedy graph growing: the base-case bisector used on the coarsest graph of
// Multilevel-KL. Grows subset 0 from a pseudo-peripheral seed, always
// absorbing the frontier vertex with the best cut gain, until subset 0
// reaches its target weight.

#include <vector>

#include "graph/csr.hpp"
#include "partition/partition.hpp"
#include "util/rng.hpp"

namespace pnr::part {

/// Returns a 0/1 side per vertex; side 0 holds ~target0 vertex weight.
/// Works on disconnected graphs (reseeds in untouched components).
std::vector<PartId> greedy_grow_bisect(const Graph& g, Weight target0,
                                       util::Rng& rng);

/// Farthest vertex from `start` by BFS (last vertex settled); a cheap
/// pseudo-peripheral point.
graph::VertexId pseudo_peripheral(const Graph& g, graph::VertexId start);

}  // namespace pnr::part
