#include "partition/rcb.hpp"

#include <algorithm>
#include <numeric>

#include "graph/subgraph.hpp"
#include "util/assert.hpp"

namespace pnr::part {

std::vector<PartId> rcb_bisect(const Graph& g, std::span<const double> coords,
                               int dim, Weight target0) {
  const auto n = static_cast<std::size_t>(g.num_vertices());
  PNR_REQUIRE(dim == 2 || dim == 3);
  PNR_REQUIRE(coords.size() == n * static_cast<std::size_t>(dim));
  PNR_REQUIRE(n >= 2);

  // Axis of the largest bounding-box extent.
  int axis = 0;
  double best_extent = -1.0;
  for (int d = 0; d < dim; ++d) {
    double lo = coords[static_cast<std::size_t>(d)];
    double hi = lo;
    for (std::size_t v = 0; v < n; ++v) {
      const double x =
          coords[v * static_cast<std::size_t>(dim) + static_cast<std::size_t>(d)];
      lo = std::min(lo, x);
      hi = std::max(hi, x);
    }
    if (hi - lo > best_extent) {
      best_extent = hi - lo;
      axis = d;
    }
  }

  std::vector<graph::VertexId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](graph::VertexId a, graph::VertexId b) {
              const double xa = coords[static_cast<std::size_t>(a) * dim + axis];
              const double xb = coords[static_cast<std::size_t>(b) * dim + axis];
              if (xa != xb) return xa < xb;
              return a < b;
            });

  std::vector<PartId> side(n, 1);
  Weight grown = 0;
  for (std::size_t k = 0; k < n - 1 && grown < target0; ++k) {
    side[static_cast<std::size_t>(order[k])] = 0;
    grown += g.vertex_weight(order[k]);
  }
  if (grown == 0) side[static_cast<std::size_t>(order[0])] = 0;
  return side;
}

namespace {

void recurse_rcb(const Graph& g, const std::vector<double>& coords, int dim,
                 const std::vector<graph::VertexId>& to_parent, PartId p,
                 PartId offset, std::vector<PartId>& out) {
  if (p == 1) {
    for (const graph::VertexId v : to_parent)
      out[static_cast<std::size_t>(v)] = offset;
    return;
  }
  PartId pl = (p + 1) / 2;
  const Weight total = g.total_vertex_weight();
  const auto target0 =
      static_cast<Weight>(static_cast<double>(total) * pl / p + 0.5);
  const auto side = rcb_bisect(g, coords, dim, target0);

  std::vector<graph::VertexId> left, right;
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v)
    (side[static_cast<std::size_t>(v)] == 0 ? left : right).push_back(v);
  PNR_REQUIRE(!left.empty() && !right.empty());
  // Keep each side's part count within its vertex count (extreme weights).
  pl = std::min<PartId>(pl, static_cast<PartId>(left.size()));
  pl = std::max<PartId>(pl, p - static_cast<PartId>(right.size()));

  auto split = [&](const std::vector<graph::VertexId>& sel, PartId sub_p,
                   PartId sub_offset) {
    auto sub = graph::induced_subgraph(g, sel);
    std::vector<double> sub_coords(sel.size() * static_cast<std::size_t>(dim));
    for (std::size_t i = 0; i < sel.size(); ++i)
      for (int d = 0; d < dim; ++d)
        sub_coords[i * static_cast<std::size_t>(dim) +
                   static_cast<std::size_t>(d)] =
            coords[static_cast<std::size_t>(sel[i]) *
                       static_cast<std::size_t>(dim) +
                   static_cast<std::size_t>(d)];
    for (auto& v : sub.to_parent) v = to_parent[static_cast<std::size_t>(v)];
    recurse_rcb(sub.graph, sub_coords, dim, sub.to_parent, sub_p, sub_offset,
                out);
  };
  split(left, pl, offset);
  split(right, p - pl, static_cast<PartId>(offset + pl));
}

}  // namespace

Partition rcb_partition(const Graph& g, std::span<const double> coords,
                        int dim, PartId p) {
  PNR_REQUIRE(p >= 1 && g.num_vertices() >= p);
  std::vector<PartId> assign(static_cast<std::size_t>(g.num_vertices()), 0);
  std::vector<graph::VertexId> identity(assign.size());
  std::iota(identity.begin(), identity.end(), 0);
  std::vector<double> local(coords.begin(), coords.end());
  recurse_rcb(g, local, dim, identity, p, 0, assign);
  return Partition(p, std::move(assign));
}

}  // namespace pnr::part
