#include "partition/recursive.hpp"

#include <algorithm>

#include "graph/subgraph.hpp"
#include "util/assert.hpp"

namespace pnr::part {

namespace {

void recurse(const Graph& g, const std::vector<graph::VertexId>& to_parent,
             PartId p, PartId label_offset, const Bisector& bisect,
             util::Rng& rng, std::vector<PartId>& out) {
  if (p == 1) {
    for (graph::VertexId v : to_parent)
      out[static_cast<std::size_t>(v)] = label_offset;
    return;
  }
  PNR_REQUIRE(g.num_vertices() >= p);
  PartId pl = (p + 1) / 2;
  const Weight total = g.total_vertex_weight();
  const auto target0 =
      static_cast<Weight>(static_cast<double>(total) * pl / p + 0.5);

  const auto side = bisect(g, target0, rng);
  PNR_REQUIRE(side.size() == static_cast<std::size_t>(g.num_vertices()));

  std::vector<graph::VertexId> left, right;
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v)
    (side[static_cast<std::size_t>(v)] == 0 ? left : right).push_back(v);
  PNR_REQUIRE_MSG(!left.empty() && !right.empty(),
                  "bisector produced an empty side");

  // With extreme vertex weights a side can end up smaller than the number
  // of parts it was meant to host; shift parts to the other side (each side
  // keeps at least one).
  pl = std::min<PartId>(pl, static_cast<PartId>(left.size()));
  pl = std::max<PartId>(pl, p - static_cast<PartId>(right.size()));
  const PartId pr = p - pl;
  PNR_REQUIRE(pl >= 1 && pr >= 1);

  auto sub_left = graph::induced_subgraph(g, left);
  auto sub_right = graph::induced_subgraph(g, right);
  // Translate local ids back to the original graph's vertex space.
  for (auto& v : sub_left.to_parent)
    v = to_parent[static_cast<std::size_t>(v)];
  for (auto& v : sub_right.to_parent)
    v = to_parent[static_cast<std::size_t>(v)];

  recurse(sub_left.graph, sub_left.to_parent, pl, label_offset, bisect, rng,
          out);
  recurse(sub_right.graph, sub_right.to_parent, pr,
          static_cast<PartId>(label_offset + pl), bisect, rng, out);
}

}  // namespace

Partition recursive_partition(const Graph& g, PartId p, const Bisector& bisect,
                              util::Rng& rng) {
  PNR_REQUIRE(p >= 1);
  PNR_REQUIRE(g.num_vertices() >= p);
  std::vector<PartId> assign(static_cast<std::size_t>(g.num_vertices()), 0);
  std::vector<graph::VertexId> identity(
      static_cast<std::size_t>(g.num_vertices()));
  for (std::size_t v = 0; v < identity.size(); ++v)
    identity[v] = static_cast<graph::VertexId>(v);
  recurse(g, identity, p, 0, bisect, rng, assign);
  return Partition(p, std::move(assign));
}

}  // namespace pnr::part
