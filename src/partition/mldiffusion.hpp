#pragma once
// Multilevel diffusion repartitioning in the style of Schloegel, Karypis and
// Kumar (the paper's reference [7]): contract the graph with the matching
// restricted to the current subsets, rebalance at the coarsest level with
// Hu–Blake flows, and refine on the way up with a plain (migration-blind)
// boundary KL under a hard balance cap. This is the strongest diffusion
// baseline the related work offers; PNR differs by running on the *nested*
// coarse graph and by pricing migration inside the KL gain.

#include "partition/partition.hpp"
#include "util/rng.hpp"

namespace pnr::part {

struct MlDiffusionOptions {
  graph::VertexId coarsest_size = 64;
  double imbalance_tol = 0.02;
  int kl_passes = 8;
};

struct MlDiffusionResult {
  std::int64_t moves = 0;     ///< vertices whose subset changed
  Weight weight_moved = 0;    ///< migration cost
  int levels = 0;
};

/// Rebalance + refine `pi` in place.
MlDiffusionResult multilevel_diffusion(const Graph& g, Partition& pi,
                                       util::Rng& rng,
                                       const MlDiffusionOptions& options = {});

}  // namespace pnr::part
