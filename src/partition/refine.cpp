#include "partition/refine.hpp"

#include <algorithm>
#include <cmath>

#include "partition/pairqueue.hpp"
#include "util/assert.hpp"
#include "util/prof.hpp"

namespace pnr::part {

namespace {

/// Scratch accumulator for conn(v, ·): edge weight from v into each subset.
class ConnScratch {
 public:
  explicit ConnScratch(PartId p)
      : conn_(static_cast<std::size_t>(p), 0),
        seen_(static_cast<std::size_t>(p), false) {}

  /// Recompute for vertex v; afterwards conn(t) and touched() are valid.
  void gather(const Graph& g, const std::vector<PartId>& part,
              graph::VertexId v) {
    for (PartId t : touched_) {
      conn_[static_cast<std::size_t>(t)] = 0;
      seen_[static_cast<std::size_t>(t)] = false;
    }
    touched_.clear();
    const auto nbrs = g.neighbors(v);
    const auto wgts = g.edge_weights(v);
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      const PartId t = part[static_cast<std::size_t>(nbrs[k])];
      if (!seen_[static_cast<std::size_t>(t)]) {
        seen_[static_cast<std::size_t>(t)] = true;
        touched_.push_back(t);
      }
      conn_[static_cast<std::size_t>(t)] += wgts[k];
    }
  }

  Weight conn(PartId t) const { return conn_[static_cast<std::size_t>(t)]; }
  const std::vector<PartId>& touched() const { return touched_; }

 private:
  std::vector<Weight> conn_;
  std::vector<char> seen_;
  std::vector<PartId> touched_;
};

struct MoveRecord {
  graph::VertexId v;
  PartId from;
  PartId to;
};

class Refiner {
 public:
  Refiner(const Graph& g, Partition& pi, const RefineOptions& opt)
      : g_(g),
        pi_(pi),
        opt_(opt),
        n_(static_cast<std::size_t>(g.num_vertices())),
        weights_(part_weights(g, pi)),
        version_(n_, 0),
        locked_(n_, false),
        queue_(pi.num_parts),
        scratch_(pi.num_parts) {
    PNR_REQUIRE(pi.valid_for(g));
    if (opt_.alpha > 0.0) {
      PNR_REQUIRE_MSG(opt_.home != nullptr,
                      "alpha > 0 requires the previous assignment");
      PNR_REQUIRE(opt_.home->size() == n_);
    }
    const auto np = static_cast<std::size_t>(pi.num_parts);
    targets_.resize(np);
    if (opt_.targets) {
      PNR_REQUIRE(opt_.targets->size() == np);
      targets_ = *opt_.targets;
    } else {
      const double avg =
          static_cast<double>(g.total_vertex_weight()) / static_cast<double>(np);
      for (auto& t : targets_) t = static_cast<Weight>(std::llround(avg));
    }
    caps_.resize(np);
    for (std::size_t i = 0; i < np; ++i)
      caps_[i] = static_cast<Weight>(std::floor(
          static_cast<double>(targets_[i]) * (1.0 + opt_.imbalance_tol)));
    abandon_after_ = opt_.abandon_after > 0
                         ? opt_.abandon_after
                         : std::max<std::int64_t>(128, static_cast<std::int64_t>(n_) / 16);
  }

  RefineResult run() {
    RefineResult result;
    for (int pass = 0; pass < opt_.max_passes; ++pass) {
      const double gain = run_pass(result);
      ++result.passes;
      if (gain <= 1e-9) break;
      result.total_gain += gain;
    }
    return result;
  }

 private:
  double gain_of(graph::VertexId v, PartId from, PartId to) {
    scratch_.gather(g_, pi_.assign, v);
    const auto w = static_cast<double>(g_.vertex_weight(v));
    double gain = static_cast<double>(scratch_.conn(to) - scratch_.conn(from));
    if (opt_.alpha > 0.0) {
      const PartId home = (*opt_.home)[static_cast<std::size_t>(v)];
      gain += opt_.alpha * w *
              (static_cast<double>(from != home) -
               static_cast<double>(to != home));
    }
    if (opt_.beta > 0.0) {
      // Deviations are measured against per-part targets so that bisections
      // with unequal halves are handled uniformly.
      const double df =
          static_cast<double>(weights_[static_cast<std::size_t>(from)]) -
          static_cast<double>(targets_[static_cast<std::size_t>(from)]);
      const double dt =
          static_cast<double>(weights_[static_cast<std::size_t>(to)]) -
          static_cast<double>(targets_[static_cast<std::size_t>(to)]);
      gain += opt_.beta * 2.0 * w * (df - dt - w);
    }
    return gain;
  }

  bool legal(graph::VertexId v, PartId from, PartId to) const {
    const Weight w = g_.vertex_weight(v);
    const Weight wf = weights_[static_cast<std::size_t>(from)];
    const Weight wt = weights_[static_cast<std::size_t>(to)];
    if (wf - w < 0) return false;
    // Never empty a subset: the number of processors is fixed.
    if (wf - w == 0 && count_[static_cast<std::size_t>(from)] <= 1) return false;
    if (!opt_.hard_balance) return true;
    // Per-move slack of the moving vertex's own weight (classic FM): light
    // vertices are held to the tight cap; a vertex heavier than the slack
    // may still cross provided the destination is at or below target.
    const Weight cap_to = std::max(caps_[static_cast<std::size_t>(to)],
                                   targets_[static_cast<std::size_t>(to)] + w);
    const Weight cap_from = caps_[static_cast<std::size_t>(from)];
    if (wt + w <= cap_to) return true;
    // Allow strictly rebalancing moves out of an overweight subset even if
    // the target briefly exceeds the cap (needed when the incoming partition
    // is worse than the tolerance).
    return wf > cap_from && wt + w < wf;
  }

  /// Queue all candidate moves for vertex v at its current version.
  void queue_vertex(graph::VertexId v) {
    if (locked_[static_cast<std::size_t>(v)]) return;
    const PartId from = pi_.assign[static_cast<std::size_t>(v)];
    scratch_.gather(g_, pi_.assign, v);
    bool queued_home = false;
    const PartId home =
        opt_.alpha > 0.0 ? (*opt_.home)[static_cast<std::size_t>(v)] : from;
    for (PartId t : scratch_.touched()) {
      if (t == from) continue;
      queue_.push(v, from, t, gain_of(v, from, t),
                  version_[static_cast<std::size_t>(v)]);
      if (t == home) queued_home = true;
    }
    if (opt_.alpha > 0.0 && home != from && !queued_home)
      queue_.push(v, from, home, gain_of(v, from, home),
                  version_[static_cast<std::size_t>(v)]);
  }

  void apply_move(graph::VertexId v, PartId from, PartId to) {
    pi_.assign[static_cast<std::size_t>(v)] = to;
    const Weight w = g_.vertex_weight(v);
    weights_[static_cast<std::size_t>(from)] -= w;
    weights_[static_cast<std::size_t>(to)] += w;
    --count_[static_cast<std::size_t>(from)];
    ++count_[static_cast<std::size_t>(to)];
  }

  double run_pass(RefineResult& result) {
    queue_.clear();
    std::fill(locked_.begin(), locked_.end(), false);
    count_.assign(static_cast<std::size_t>(pi_.num_parts), 0);
    for (PartId p : pi_.assign) ++count_[static_cast<std::size_t>(p)];

    for (graph::VertexId v = 0; v < g_.num_vertices(); ++v) queue_vertex(v);

    std::vector<MoveRecord> log;
    std::vector<PairQueueTable::Entry> deferred;
    double cum_gain = 0.0;
    double best_gain = 0.0;
    std::size_t best_prefix = 0;
    std::int64_t since_best = 0;

    for (;;) {
      auto entry = queue_.pop_best(version_);
      if (!entry) {
        if (deferred.empty()) break;
        // Nothing live is legal/fresh; no further move can unblock things.
        break;
      }
      const auto sv = static_cast<std::size_t>(entry->v);
      if (locked_[sv] || pi_.assign[sv] != entry->from) continue;

      const double now = gain_of(entry->v, entry->from, entry->to);
      if (std::abs(now - entry->gain) > 1e-9) {
        queue_.push(entry->v, entry->from, entry->to, now, version_[sv]);
        continue;
      }
      if (!legal(entry->v, entry->from, entry->to)) {
        deferred.push_back(*entry);
        continue;
      }

      apply_move(entry->v, entry->from, entry->to);
      locked_[sv] = true;
      ++version_[sv];
      log.push_back({entry->v, entry->from, entry->to});
      cum_gain += now;
      if (cum_gain > best_gain + 1e-9) {
        best_gain = cum_gain;
        best_prefix = log.size();
        since_best = 0;
      } else if (++since_best > abandon_after_) {
        break;
      }

      // Moving v changed the gains of its neighbors; re-queue them fresh.
      for (graph::VertexId u : g_.neighbors(entry->v)) {
        const auto su = static_cast<std::size_t>(u);
        if (locked_[su]) continue;
        ++version_[su];
        queue_vertex(u);
      }
      // Weight changes may have legalized previously deferred moves.
      if (!deferred.empty()) {
        auto pending = std::move(deferred);
        deferred.clear();
        for (const auto& d : pending) {
          const auto sd = static_cast<std::size_t>(d.v);
          if (locked_[sd] || pi_.assign[sd] != d.from) continue;
          if (version_[sd] != d.version) continue;  // re-queued already
          queue_.push(d.v, d.from, d.to, gain_of(d.v, d.from, d.to),
                      version_[sd]);
        }
      }
    }

    // Roll back the moves after the best prefix (KL hill-climb semantics).
    for (std::size_t k = log.size(); k > best_prefix; --k) {
      const MoveRecord& m = log[k - 1];
      apply_move(m.v, m.to, m.from);
    }
    result.moves += static_cast<std::int64_t>(best_prefix);
    return best_gain;
  }

  const Graph& g_;
  Partition& pi_;
  const RefineOptions& opt_;
  std::size_t n_;
  std::vector<Weight> weights_;
  std::vector<std::int64_t> count_;
  std::vector<std::uint32_t> version_;
  std::vector<char> locked_;
  PairQueueTable queue_;
  ConnScratch scratch_;
  std::vector<Weight> targets_;
  std::vector<Weight> caps_;
  std::int64_t abandon_after_ = 0;
};

}  // namespace

RefineResult refine_partition(const Graph& g, Partition& pi,
                              const RefineOptions& options) {
  if (g.num_vertices() == 0) return {};
  PNR_PROF_SPAN("kl.refine");
  Refiner refiner(g, pi, options);
  const RefineResult result = refiner.run();
  // Per-pass statistics are accumulated inside the pass loop and emitted
  // once here so the hot path stays probe-free.
  prof::count("kl.passes", result.passes);
  prof::count("kl.moves", result.moves);
  return result;
}

}  // namespace pnr::part
