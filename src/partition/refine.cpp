#include "partition/refine.hpp"

#include <algorithm>
#include <cmath>

#include "check/level.hpp"
#include "partition/conn.hpp"
#include "partition/pairqueue.hpp"
#include "util/assert.hpp"
#include "util/prof.hpp"

namespace pnr::part {

namespace {

struct MoveRecord {
  graph::VertexId v;
  PartId from;
  PartId to;
};

class Refiner {
 public:
  Refiner(const Graph& g, Partition& pi, const RefineOptions& opt,
          SharedConnState* shared)
      : g_(g),
        pi_(pi),
        opt_(opt),
        shared_(shared),
        n_(static_cast<std::size_t>(g.num_vertices())),
        weights_(part_weights(g, pi)),
        locked_(n_, false),
        queue_(pi.num_parts, g.num_vertices()) {
    PNR_REQUIRE(pi.valid_for(g));
    if (opt_.alpha > 0.0) {
      PNR_REQUIRE_MSG(opt_.home != nullptr,
                      "alpha > 0 requires the previous assignment");
      PNR_REQUIRE(opt_.home->size() == n_);
    }
    const auto np = static_cast<std::size_t>(pi.num_parts);
    targets_.resize(np);
    if (opt_.targets) {
      PNR_REQUIRE(opt_.targets->size() == np);
      targets_ = *opt_.targets;
    } else {
      const double avg =
          static_cast<double>(g.total_vertex_weight()) / static_cast<double>(np);
      for (auto& t : targets_) t = static_cast<Weight>(std::llround(avg));
    }
    caps_.resize(np);
    for (std::size_t i = 0; i < np; ++i)
      caps_[i] = static_cast<Weight>(std::floor(
          static_cast<double>(targets_[i]) * (1.0 + opt_.imbalance_tol)));
    abandon_after_ = opt_.abandon_after > 0
                         ? opt_.abandon_after
                         : std::max<std::int64_t>(128, static_cast<std::int64_t>(n_) / 16);

    count_.assign(np, 0);
    for (PartId p : pi_.assign) ++count_[static_cast<std::size_t>(p)];
    // One-time conn build; kept exact by delta updates from here on. A
    // carried table is NOT adopted here: its row slots sit in move order,
    // and seeding pushes candidates in row order, so adopting would change
    // the queue's FIFO tie-breaking — the build keeps refinement invariant
    // of the chain. (The rebalancer reads rows only through get(), so the
    // reverse hand-off below is order-insensitive and safe.)
    conn_.build(g_, pi_.assign, pi_.num_parts);
    maintain_quotient_ = shared_ && shared_->quotient_valid;
    active_.reset(n_);
    for (graph::VertexId v = 0; v < g_.num_vertices(); ++v) update_active(v);
  }

  /// Hand the (still exact) connectivity state back to the chain. Call once,
  /// after run().
  void release_shared() {
    if (!shared_) return;
    shared_->conn = std::move(conn_);
    shared_->conn_valid = true;
  }

  RefineResult run() {
    RefineResult result;
    for (int pass = 0; pass < opt_.max_passes; ++pass) {
      const double gain = run_pass(result);
      ++result.passes;
      if (gain <= 1e-9) break;
      result.total_gain += gain;
    }
    result.queue_pushes = queue_.pushes();
    // Phase-boundary deep audit (PNR_CHECK_LEVEL >= 2): the same state
    // cross-check the check_invariants test hook runs after every move.
    if constexpr (check::kLevel >= 2) {
      verify_incremental_state();
      prof::count("check.audits");
    }
    return result;
  }

 private:
  bool away_home(graph::VertexId v) const {
    return opt_.alpha > 0.0 &&
           (*opt_.home)[static_cast<std::size_t>(v)] !=
               pi_.assign[static_cast<std::size_t>(v)];
  }

  /// A vertex is seedable iff it has a candidate move: a cross-partition
  /// edge, or (α > 0) a return-home move from a foreign subset.
  void update_active(graph::VertexId v) {
    if (conn_.is_boundary(v, pi_.assign[static_cast<std::size_t>(v)]) ||
        away_home(v))
      active_.insert(v);
    else
      active_.erase(v);
  }

  /// Exact gain from the conn row — O(row size), no adjacency gather.
  double gain_of(graph::VertexId v, PartId from, PartId to) const {
    const auto w = static_cast<double>(g_.vertex_weight(v));
    double gain = static_cast<double>(conn_.get(v, to) - conn_.get(v, from));
    if (opt_.alpha > 0.0) {
      const PartId home = (*opt_.home)[static_cast<std::size_t>(v)];
      gain += opt_.alpha * w *
              (static_cast<double>(from != home) -
               static_cast<double>(to != home));
    }
    if (opt_.beta > 0.0) {
      // Deviations are measured against per-part targets so that bisections
      // with unequal halves are handled uniformly.
      const double df =
          static_cast<double>(weights_[static_cast<std::size_t>(from)]) -
          static_cast<double>(targets_[static_cast<std::size_t>(from)]);
      const double dt =
          static_cast<double>(weights_[static_cast<std::size_t>(to)]) -
          static_cast<double>(targets_[static_cast<std::size_t>(to)]);
      gain += opt_.beta * 2.0 * w * (df - dt - w);
    }
    return gain;
  }

  bool legal(graph::VertexId v, PartId from, PartId to) const {
    const Weight w = g_.vertex_weight(v);
    const Weight wf = weights_[static_cast<std::size_t>(from)];
    const Weight wt = weights_[static_cast<std::size_t>(to)];
    if (wf - w < 0) return false;
    // Never empty a subset: the number of processors is fixed.
    if (wf - w == 0 && count_[static_cast<std::size_t>(from)] <= 1) return false;
    if (!opt_.hard_balance) return true;
    // Per-move slack of the moving vertex's own weight (classic FM): light
    // vertices are held to the tight cap; a vertex heavier than the slack
    // may still cross provided the destination is at or below target.
    const Weight cap_to = std::max(caps_[static_cast<std::size_t>(to)],
                                   targets_[static_cast<std::size_t>(to)] + w);
    const Weight cap_from = caps_[static_cast<std::size_t>(from)];
    if (wt + w <= cap_to) return true;
    // Allow strictly rebalancing moves out of an overweight subset even if
    // the target briefly exceeds the cap (needed when the incoming partition
    // is worse than the tolerance).
    return wf > cap_from && wt + w < wf;
  }

  /// (Re)file every candidate move of v with its exact current gain.
  void seed_vertex(graph::VertexId v) {
    if (locked_[static_cast<std::size_t>(v)]) return;
    const PartId from = pi_.assign[static_cast<std::size_t>(v)];
    bool queued_home = false;
    const PartId home =
        opt_.alpha > 0.0 ? (*opt_.home)[static_cast<std::size_t>(v)] : from;
    for (const ConnTable::Slot& s : conn_.entries(v)) {
      if (s.part == from) continue;
      queue_.push_or_update(v, from, s.part, gain_of(v, from, s.part));
      if (s.part == home) queued_home = true;
    }
    if (opt_.alpha > 0.0 && home != from && !queued_home)
      queue_.push_or_update(v, from, home, gain_of(v, from, home));
  }

  /// Re-key candidate (u: from → t) after conn(u, t) changed, dropping it
  /// when the last cross edge into t vanished (unless t is u's home).
  void refresh_candidate(graph::VertexId u, PartId from, PartId t) {
    if (t == from) return;
    const bool keep =
        conn_.get(u, t) > 0 ||
        (opt_.alpha > 0.0 && (*opt_.home)[static_cast<std::size_t>(u)] == t);
    if (keep)
      queue_.push_or_update(u, from, t, gain_of(u, from, t));
    else
      queue_.remove(u, from, t);
  }

  /// Move v and delta-update all incremental state. During a pass the
  /// affected candidates are re-keyed in place; rollbacks (during_pass =
  /// false) skip the queue, which is rebuilt at the next pass anyway.
  void apply_move(graph::VertexId v, PartId from, PartId to,
                  bool during_pass) {
    // Reads v's own conn row, which the move leaves untouched (it describes
    // v's neighbors) — rollback calls keep the quotient exact the same way.
    if (maintain_quotient_) shared_->quotient.apply_move(conn_, v, from, to);
    pi_.assign[static_cast<std::size_t>(v)] = to;
    const Weight w = g_.vertex_weight(v);
    weights_[static_cast<std::size_t>(from)] -= w;
    weights_[static_cast<std::size_t>(to)] += w;
    --count_[static_cast<std::size_t>(from)];
    ++count_[static_cast<std::size_t>(to)];

    const auto adj = g_.adjacency(v);
    for (std::size_t k = 0; k < adj.size(); ++k) {
      const graph::VertexId u = adj.nbrs[k];
      conn_.add(u, from, -adj.wgts[k]);
      conn_.add(u, to, adj.wgts[k]);
      update_active(u);
      if (!during_pass || locked_[static_cast<std::size_t>(u)]) continue;
      const PartId pu = pi_.assign[static_cast<std::size_t>(u)];
      if (pu == from || pu == to) {
        // conn(u, own) changed: every candidate's cut term shifted, and the
        // candidate set itself may have changed — refile from the conn row.
        queue_.remove_all(u, pu);
        seed_vertex(u);
      } else {
        refresh_candidate(u, pu, from);
        refresh_candidate(u, pu, to);
      }
    }
    update_active(v);
  }

  double run_pass(RefineResult& result) {
    queue_.clear();
    std::fill(locked_.begin(), locked_.end(), false);

    // Boundary-only seeding, in canonical vertex order so results do not
    // depend on the history of the active set.
    seed_order_.assign(active_.items().begin(), active_.items().end());
    std::sort(seed_order_.begin(), seed_order_.end());
    for (graph::VertexId v : seed_order_) seed_vertex(v);
    result.boundary_seeded += static_cast<std::int64_t>(seed_order_.size());
    if constexpr (check::kLevel >= 2)
      check::enforce_empty(queue_.self_check(), "kl.refine/seed");

    std::vector<MoveRecord>& log = log_;
    log.clear();
    std::vector<PairQueueTable::Entry>& deferred = deferred_;
    deferred.clear();
    double cum_gain = 0.0;
    double best_gain = 0.0;
    std::size_t best_prefix = 0;
    std::int64_t since_best = 0;
    // With β = 0 every filed gain is exact (cut term re-keyed on neighbor
    // moves, α term static), so pops are applied directly. The β term
    // couples gains to the global subset weights, which drift with every
    // move anywhere — verify those on pop and re-key on mismatch.
    const bool exact = opt_.beta <= 0.0;

    for (;;) {
      auto entry = queue_.pop_best();
      // Deferred (illegal) moves are re-armed whenever an applied move
      // touches their subsets, so an empty queue means the subset weights
      // cannot change again and no deferred move can become legal: the
      // pass is over.
      if (!entry) break;
      const auto sv = static_cast<std::size_t>(entry->v);
      // A locked vertex's remaining candidates are not removed when it
      // locks — they surface here eventually and are skipped, which costs
      // the same sift a removal would but is free for every entry still
      // queued when the pass ends (clear() drops them wholesale). Skipping
      // is side-effect-free, so the pop order of live entries — a total
      // order on (gain, arrival) — is exactly that of eager removal.
      if (locked_[sv]) continue;
      PNR_ASSERT(pi_.assign[sv] == entry->from);

      double now = entry->gain;
      if (!exact) {
        now = gain_of(entry->v, entry->from, entry->to);
        ++result.gain_recomputes;
        if (std::abs(now - entry->gain) > 1e-9) {
          queue_.push_or_update(entry->v, entry->from, entry->to, now);
          ++result.stale_pops;
          continue;
        }
      }
      if (!legal(entry->v, entry->from, entry->to)) {
        deferred.push_back(*entry);
        continue;
      }

      locked_[sv] = true;
      apply_move(entry->v, entry->from, entry->to, true);
      log.push_back({entry->v, entry->from, entry->to});
      cum_gain += now;
      if (opt_.check_invariants) verify_incremental_state();
      if (cum_gain > best_gain + 1e-9) {
        best_gain = cum_gain;
        best_prefix = log.size();
        since_best = 0;
      } else if (++since_best > abandon_after_) {
        break;
      }

      // Weight changes may have legalized previously deferred moves — but
      // only those whose blocking inputs actually moved: legality of
      // (d.from → d.to) depends on W_{d.from} rising (the applied move fed
      // d.from) or W_{d.to} falling (it drained d.to). Everything else is
      // provably still illegal and stays deferred, which kills the
      // pop/defer/re-arm ping-pong the recompute-based refiner suffered.
      if (!deferred.empty()) {
        std::size_t kept = 0;
        for (const auto& d : deferred) {
          const auto sd = static_cast<std::size_t>(d.v);
          if (locked_[sd] || pi_.assign[sd] != d.from) continue;
          if (d.from == entry->to || d.to == entry->from) {
            queue_.push_or_update(d.v, d.from, d.to,
                                  gain_of(d.v, d.from, d.to));
          } else {
            deferred[kept++] = d;
          }
        }
        deferred.resize(kept);
      }
    }

    // Roll back the moves after the best prefix (KL hill-climb semantics).
    for (std::size_t k = log.size(); k > best_prefix; --k) {
      const MoveRecord& m = log[k - 1];
      apply_move(m.v, m.to, m.from, false);
    }
    result.moves += static_cast<std::int64_t>(best_prefix);
    return best_gain;
  }

  /// Test hook (RefineOptions::check_invariants): compare every piece of
  /// incrementally maintained state against a from-scratch recompute.
  void verify_incremental_state() const {
    ConnTable fresh;
    fresh.build(g_, pi_.assign, pi_.num_parts);
    for (graph::VertexId v = 0; v < g_.num_vertices(); ++v) {
      for (const ConnTable::Slot& s : fresh.entries(v))
        PNR_REQUIRE_MSG(conn_.get(v, s.part) == s.weight,
                        "incremental conn row diverged from recompute");
      PNR_REQUIRE_MSG(conn_.entries(v).size() == fresh.entries(v).size(),
                      "incremental conn row has phantom slots");
      const bool should_be_active =
          fresh.is_boundary(v, pi_.assign[static_cast<std::size_t>(v)]) ||
          away_home(v);
      PNR_REQUIRE_MSG(active_.contains(v) == should_be_active,
                      "boundary set diverged from recompute");
    }
    const auto fresh_weights = part_weights(g_, pi_);
    PNR_REQUIRE_MSG(weights_ == fresh_weights,
                    "subset weights diverged from recompute");
    if (maintain_quotient_)
      PNR_REQUIRE_MSG(shared_->quotient.violation(g_, pi_).empty(),
                      "carried quotient graph diverged from recompute");
  }

  const Graph& g_;
  Partition& pi_;
  const RefineOptions& opt_;
  SharedConnState* shared_;
  bool maintain_quotient_ = false;
  std::size_t n_;
  std::vector<Weight> weights_;
  std::vector<std::int64_t> count_;
  std::vector<char> locked_;
  PairQueueTable queue_;
  ConnTable conn_;
  VertexSet active_;
  std::vector<graph::VertexId> seed_order_;
  std::vector<MoveRecord> log_;
  std::vector<PairQueueTable::Entry> deferred_;
  std::vector<Weight> targets_;
  std::vector<Weight> caps_;
  std::int64_t abandon_after_ = 0;
};

}  // namespace

RefineResult refine_partition(const Graph& g, Partition& pi,
                              const RefineOptions& options,
                              SharedConnState* shared) {
  if (g.num_vertices() == 0) return {};
  PNR_PROF_SPAN("kl.refine");
  Refiner refiner(g, pi, options, shared);
  const RefineResult result = refiner.run();
  refiner.release_shared();
  // Per-pass statistics are accumulated inside the pass loop and emitted
  // once here so the hot path stays probe-free.
  prof::count("kl.passes", result.passes);
  prof::count("kl.moves", result.moves);
  prof::count("kl.boundary_seeded", result.boundary_seeded);
  prof::count("kl.queue_pushes", result.queue_pushes);
  prof::count("kl.stale_pops", result.stale_pops);
  prof::count("kl.gain_recomputes", result.gain_recomputes);
  return result;
}

}  // namespace pnr::part
