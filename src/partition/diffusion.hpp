#pragma once
// Diffusion-based repartitioning baseline in the style of Walshaw et al. [6]
// and Schloegel–Karypis–Kumar [7]: the load to transfer between adjacent
// processors is computed with Hu–Blake's optimal diffusion (paper reference
// [8]) — solve L_H λ = b on the processor connectivity graph, flow on edge
// (i,j) is λ_i − λ_j — and then boundary vertices are migrated greedily to
// satisfy the flows while keeping the cut small.

#include <vector>

#include "graph/csr.hpp"
#include "graph/laplacian.hpp"
#include "partition/partition.hpp"
#include "util/rng.hpp"

namespace pnr::part {

/// Processor connectivity graph H of a partition: one vertex per subset, an
/// edge between subsets that share a cut edge (edge weight = total cut weight
/// between the pair; vertex weight = subset weight).
graph::Graph processor_graph(const Graph& g, const Partition& pi);

/// Hu–Blake optimal flow: potentials λ on H such that moving (λ_i − λ_j)
/// load across each edge (i,j) balances the system. `load` is the signed
/// excess per processor (weight − average), which must sum to ~0.
/// Returns λ (empty on CG failure, e.g. disconnected H).
std::vector<double> hu_blake_potentials(const graph::Graph& h,
                                        const std::vector<double>& load);

/// Same solve for a caller who already holds the *unit-weight* connectivity
/// graph (e.g. an incrementally maintained QuotientGraph), skipping the
/// re-unitizing rebuild above.
std::vector<double> hu_blake_potentials_unit(const graph::Graph& unit,
                                             const std::vector<double>& load);

/// Work vectors for the sweep-loop variant below.
struct HuBlakeScratch {
  std::vector<double> lambda;
  graph::CgScratch cg;
};

/// Allocation-free variant for callers solving once per sweep: the result
/// lands in scratch.lambda. Returns false when the solve fails (disconnected
/// processor graph), in which case scratch.lambda is unspecified.
bool hu_blake_potentials_unit(const graph::Graph& unit,
                              const std::vector<double>& load,
                              HuBlakeScratch& scratch);

struct DiffusionOptions {
  int max_sweeps = 12;       ///< outer migrate-and-recompute iterations
  double flow_tolerance = 0.5;  ///< stop when residual flows are below this
};

struct DiffusionResult {
  int sweeps = 0;
  std::int64_t moves = 0;
};

/// Rebalance `pi` in place by migrating boundary vertices along Hu–Blake
/// flows. Several sweeps are typically needed — the same regions can move
/// repeatedly, which is precisely the behavior Section 1 criticizes.
DiffusionResult diffusion_rebalance(const Graph& g, Partition& pi,
                                    const DiffusionOptions& options = {});

}  // namespace pnr::part
