#pragma once
// The Biswas–Oliker heuristic (paper reference [5]): after a standard
// partitioner computes a fresh partition Π̂, relabel its subsets so that each
// new subset lands on the processor that already owns most of its weight —
// an optimal assignment problem on the p×p overlap matrix, solved exactly
// with the Hungarian algorithm. The result Π̃ is the permutation of Π̂ that
// minimizes C_migrate(Π, Π̃).

#include <vector>

#include "partition/partition.hpp"

namespace pnr::part {

/// overlap[i][j] = total vertex weight assigned to old subset i and new
/// subset j (row-major p×p).
std::vector<Weight> overlap_matrix(const Graph& g, const Partition& old_pi,
                                   const Partition& new_pi);

/// Minimum-cost perfect matching on a p×p cost matrix (row-major, costs may
/// be any int64). Returns column assigned to each row. O(p³).
std::vector<PartId> hungarian_min_cost(const std::vector<Weight>& cost,
                                       PartId p);

/// The label permutation sigma maximizing retained weight: new subset j is
/// renamed sigma[j].
std::vector<PartId> best_relabel(const Graph& g, const Partition& old_pi,
                                 const Partition& new_pi);

/// Apply a relabeling to a partition.
Partition apply_relabel(const Partition& pi, const std::vector<PartId>& sigma);

/// Convenience: Π̃ = apply_relabel(Π̂, best_relabel(...)).
Partition remap_to_minimize_migration(const Graph& g, const Partition& old_pi,
                                      const Partition& new_pi);

}  // namespace pnr::part
