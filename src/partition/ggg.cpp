#include "partition/ggg.hpp"

#include <algorithm>
#include <queue>

#include "graph/algorithms.hpp"
#include "util/assert.hpp"

namespace pnr::part {

graph::VertexId pseudo_peripheral(const Graph& g, graph::VertexId start) {
  // Two BFS sweeps: the farthest vertex from the farthest vertex.
  auto far_of = [&](graph::VertexId s) {
    const auto dist = graph::bfs_distances(g, s);
    graph::VertexId best = s;
    std::int32_t best_d = 0;
    for (std::size_t v = 0; v < dist.size(); ++v)
      if (dist[v] > best_d) {
        best_d = dist[v];
        best = static_cast<graph::VertexId>(v);
      }
    return best;
  };
  return far_of(far_of(start));
}

std::vector<PartId> greedy_grow_bisect(const Graph& g, Weight target0,
                                       util::Rng& rng) {
  const auto n = static_cast<std::size_t>(g.num_vertices());
  PNR_REQUIRE(n > 0);
  std::vector<PartId> side(n, 1);

  // Max-gain frontier: gain = (edge weight into side 0) − (into side 1).
  struct Item {
    Weight gain;
    std::uint64_t order;
    graph::VertexId v;
    bool operator<(const Item& o) const {
      if (gain != o.gain) return gain < o.gain;
      return order > o.order;
    }
  };
  std::priority_queue<Item> frontier;
  std::vector<Weight> to_zero(n, 0);  // current edge weight into side 0
  std::vector<char> in_zero(n, false);
  std::uint64_t order = 0;
  Weight grown = 0;

  auto push_neighborhood = [&](graph::VertexId v) {
    const auto nbrs = g.neighbors(v);
    const auto wgts = g.edge_weights(v);
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      const auto su = static_cast<std::size_t>(nbrs[k]);
      if (in_zero[su]) continue;
      to_zero[su] += wgts[k];
      const Weight gain =
          2 * to_zero[su] - g.weighted_degree(nbrs[k]);  // int0 − ext0
      frontier.push(Item{gain, order++, nbrs[k]});
    }
  };

  auto absorb = [&](graph::VertexId v) {
    in_zero[static_cast<std::size_t>(v)] = true;
    side[static_cast<std::size_t>(v)] = 0;
    grown += g.vertex_weight(v);
    push_neighborhood(v);
  };

  // Seed from a pseudo-peripheral vertex of a random start.
  absorb(pseudo_peripheral(
      g, static_cast<graph::VertexId>(rng.next_below(n))));

  while (grown < target0) {
    graph::VertexId next = graph::kInvalidVertex;
    while (!frontier.empty()) {
      const Item item = frontier.top();
      frontier.pop();
      const auto sv = static_cast<std::size_t>(item.v);
      if (in_zero[sv]) continue;
      // Accept only entries reflecting the current to_zero (lazy refresh).
      const Weight gain = 2 * to_zero[sv] - g.weighted_degree(item.v);
      if (gain != item.gain) {
        frontier.push(Item{gain, order++, item.v});
        continue;
      }
      next = item.v;
      break;
    }
    if (next == graph::kInvalidVertex) {
      // Frontier exhausted (disconnected graph): reseed anywhere outside.
      for (std::size_t v = 0; v < n; ++v)
        if (!in_zero[v]) {
          next = static_cast<graph::VertexId>(v);
          break;
        }
      if (next == graph::kInvalidVertex) break;  // everything absorbed
    }
    absorb(next);
  }
  return side;
}

}  // namespace pnr::part
