#include "partition/rsb.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "graph/coarsen.hpp"
#include "graph/laplacian.hpp"
#include "partition/dense_eig.hpp"
#include "partition/recursive.hpp"
#include "partition/refine.hpp"
#include "util/assert.hpp"
#include "util/prof.hpp"

namespace pnr::part {

namespace {

std::vector<double> dense_fiedler(const Graph& g) {
  PNR_PROF_SPAN("rsb.dense_eig");
  const int n = g.num_vertices();
  std::vector<double> lap(static_cast<std::size_t>(n) * n, 0.0);
  for (graph::VertexId v = 0; v < n; ++v) {
    const auto nbrs = g.neighbors(v);
    const auto wgts = g.edge_weights(v);
    double deg = 0.0;
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      const double w = static_cast<double>(wgts[k]);
      lap[static_cast<std::size_t>(v) * n + nbrs[k]] = -w;
      deg += w;
    }
    lap[static_cast<std::size_t>(v) * n + v] = deg;
  }
  std::vector<double> evals, evecs;
  jacobi_eigensymm(lap, n, evals, evecs);
  // Second-smallest eigenpair; index 0 is the (near-)zero constant mode.
  std::vector<double> x(evecs.begin() + n, evecs.begin() + 2 * n);
  graph::deflate_constant(x);
  graph::normalize(x);
  return x;
}

/// Projected gradient descent on the Rayleigh quotient of L, keeping x
/// orthogonal to the ones vector.
void smooth_fiedler(const Graph& g, std::vector<double>& x, int iterations) {
  prof::count("rsb.smooth_iterations", iterations);
  const auto n = static_cast<std::size_t>(g.num_vertices());
  double max_wdeg = 0.0;
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v)
    max_wdeg = std::max(max_wdeg, static_cast<double>(g.weighted_degree(v)));
  const double step = max_wdeg > 0.0 ? 1.0 / (2.0 * max_wdeg) : 0.0;

  std::vector<double> y(n);
  for (int it = 0; it < iterations; ++it) {
    graph::deflate_constant(x);
    if (graph::normalize(x) == 0.0) return;
    graph::laplacian_apply(g, x, y);
    const double rho = graph::dot(x, y);
    for (std::size_t i = 0; i < n; ++i) x[i] -= step * (y[i] - rho * x[i]);
  }
  graph::deflate_constant(x);
  graph::normalize(x);
}

std::vector<double> fiedler_recursive(const Graph& g, util::Rng& rng,
                                      const RsbOptions& options) {
  if (g.num_vertices() <= options.dense_threshold) return dense_fiedler(g);

  graph::CoarsenOptions copt;  // plain HEM
  const auto level = graph::coarsen_once(g, rng, copt);
  std::vector<double> x;
  if (level.graph.num_vertices() >=
      g.num_vertices() - g.num_vertices() / 20) {
    // Contraction stalled; start from a random vector instead of recursing.
    x.resize(static_cast<std::size_t>(g.num_vertices()));
    for (double& v : x) v = rng.uniform(-1.0, 1.0);
  } else {
    const auto coarse = fiedler_recursive(level.graph, rng, options);
    x.resize(static_cast<std::size_t>(g.num_vertices()));
    for (std::size_t v = 0; v < x.size(); ++v)
      x[v] = coarse[static_cast<std::size_t>(level.fine_to_coarse[v])];
  }
  smooth_fiedler(g, x, options.smooth_iterations);
  if (graph::normalize(x) == 0.0) {
    for (double& v : x) v = rng.uniform(-1.0, 1.0);
    smooth_fiedler(g, x, options.smooth_iterations);
  }
  return x;
}

}  // namespace

std::vector<double> fiedler_vector(const Graph& g, util::Rng& rng,
                                   const RsbOptions& options) {
  PNR_REQUIRE(g.num_vertices() >= 2);
  PNR_PROF_SPAN("rsb.fiedler");
  return fiedler_recursive(g, rng, options);
}

std::vector<PartId> rsb_bisect(const Graph& g, Weight target0, util::Rng& rng,
                               const RsbOptions& options) {
  PNR_PROF_SPAN("rsb.bisect");
  const auto n = static_cast<std::size_t>(g.num_vertices());
  PNR_REQUIRE(n >= 2);
  const Weight total = g.total_vertex_weight();
  PNR_REQUIRE(target0 > 0 && target0 < total);

  const auto x = fiedler_vector(g, rng, options);

  // Weighted median split: vertices in ascending Fiedler order fill side 0
  // until it reaches the target weight.
  std::vector<graph::VertexId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](graph::VertexId a, graph::VertexId b) {
    const double xa = x[static_cast<std::size_t>(a)];
    const double xb = x[static_cast<std::size_t>(b)];
    if (xa != xb) return xa < xb;
    return a < b;
  });

  std::vector<PartId> side(n, 1);
  Weight grown = 0;
  for (std::size_t k = 0; k < n - 1 && grown < target0; ++k) {
    side[static_cast<std::size_t>(order[k])] = 0;
    grown += g.vertex_weight(order[k]);
  }
  if (grown == 0) side[static_cast<std::size_t>(order[0])] = 0;

  if (options.kl_polish) {
    const std::vector<Weight> targets{target0, total - target0};
    RefineOptions ropt;
    ropt.hard_balance = true;
    ropt.imbalance_tol = options.imbalance_tol;
    ropt.max_passes = options.fm_passes;
    ropt.targets = &targets;
    Partition pi(2, std::move(side));
    refine_partition(g, pi, ropt);
    side = std::move(pi.assign);
    bool has0 = false, has1 = false;
    for (PartId s : side) (s == 0 ? has0 : has1) = true;
    if (!has0) side[static_cast<std::size_t>(order[0])] = 0;
    if (!has1) side[static_cast<std::size_t>(order[n - 1])] = 1;
  }
  return side;
}

Partition rsb(const Graph& g, PartId p, util::Rng& rng,
              const RsbOptions& options) {
  return recursive_partition(
      g, p,
      [&options](const Graph& sub, Weight target0, util::Rng& r) {
        return rsb_bisect(sub, target0, r, options);
      },
      rng);
}

}  // namespace pnr::part
