#include "partition/mlkl.hpp"

#include <algorithm>

#include "graph/coarsen.hpp"
#include "partition/ggg.hpp"
#include "partition/recursive.hpp"
#include "partition/refine.hpp"
#include "util/assert.hpp"
#include "util/prof.hpp"

namespace pnr::part {

std::vector<PartId> mlkl_bisect(const Graph& g, Weight target0,
                                util::Rng& rng, const MlklOptions& options) {
  PNR_PROF_SPAN("mlkl.bisect");
  const Weight total = g.total_vertex_weight();
  PNR_REQUIRE(target0 > 0 && target0 < total);

  graph::CoarsenOptions copt;
  // Cap coarse vertex weight so the coarsest graph stays bisectable near the
  // target ratio (Karypis–Kumar use a similar guard).
  copt.max_vertex_weight = std::max<Weight>(1, total / 20);
  copt.random_matching = options.random_matching;
  const auto levels =
      graph::build_hierarchy(g, rng, options.coarsest_size, copt);

  const Graph& coarsest = levels.empty() ? g : levels.back().graph;
  std::vector<PartId> side = greedy_grow_bisect(coarsest, target0, rng);

  const std::vector<Weight> targets{target0, total - target0};
  RefineOptions ropt;
  ropt.hard_balance = true;
  ropt.imbalance_tol = options.imbalance_tol;
  ropt.max_passes = options.fm_passes;
  ropt.targets = &targets;

  // Refine at the coarsest level, then project down and refine at each
  // finer level.
  PNR_PROF_SPAN("mlkl.uncoarsen_refine");
  {
    Partition pi(2, side);
    refine_partition(coarsest, pi, ropt);
    side = std::move(pi.assign);
  }
  for (std::size_t k = levels.size(); k > 0; --k) {
    side = graph::project_partition(levels[k - 1].fine_to_coarse, side);
    const Graph& level_graph = k >= 2 ? levels[k - 2].graph : g;
    Partition pi(2, std::move(side));
    refine_partition(level_graph, pi, ropt);
    side = std::move(pi.assign);
  }

  // Guarantee both sides are non-empty (tiny/pathological graphs).
  bool has0 = false, has1 = false;
  for (PartId s : side) (s == 0 ? has0 : has1) = true;
  if (!has0) side.front() = 0;
  if (!has1) side.back() = 1;
  return side;
}

Partition multilevel_kl(const Graph& g, PartId p, util::Rng& rng,
                        const MlklOptions& options) {
  return recursive_partition(
      g, p,
      [&options](const Graph& sub, Weight target0, util::Rng& r) {
        return mlkl_bisect(sub, target0, r, options);
      },
      rng);
}

}  // namespace pnr::part
