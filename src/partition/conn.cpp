#include "partition/conn.hpp"

#include <algorithm>
#include <string>

#include "graph/builder.hpp"
#include "util/assert.hpp"
#include "util/prof.hpp"

namespace pnr::part {

void ConnTable::build(const Graph& g, const std::vector<PartId>& assign,
                      PartId num_parts) {
  const auto n = static_cast<std::size_t>(g.num_vertices());
  offset_.assign(n + 1, 0);
  count_.assign(n, 0);
  // Row capacity = min(deg, p): a row can never hold more distinct subsets.
  for (std::size_t v = 0; v < n; ++v)
    offset_[v + 1] =
        offset_[v] + std::min<std::int64_t>(
                         g.degree(static_cast<graph::VertexId>(v)), num_parts);
  pool_.assign(static_cast<std::size_t>(offset_[n]), Slot{0, 0});
  for (std::size_t v = 0; v < n; ++v) {
    const auto adj = g.adjacency(static_cast<graph::VertexId>(v));
    for (std::size_t k = 0; k < adj.size(); ++k)
      add(static_cast<graph::VertexId>(v),
          assign[static_cast<std::size_t>(adj.nbrs[k])], adj.wgts[k]);
  }
}

void ConnTable::add(graph::VertexId v, PartId t, Weight delta) {
  if (delta == 0) return;
  const auto sv = static_cast<std::size_t>(v);
  Slot* row = pool_.data() + offset_[sv];
  const std::int32_t cnt = count_[sv];
  for (std::int32_t i = 0; i < cnt; ++i) {
    if (row[i].part != t) continue;
    row[i].weight += delta;
    PNR_ASSERT(row[i].weight >= 0);
    if (row[i].weight == 0) {
      row[i] = row[cnt - 1];
      --count_[sv];
    }
    return;
  }
  PNR_ASSERT(delta > 0);
  PNR_ASSERT(offset_[sv] + cnt < offset_[sv + 1]);
  row[cnt] = Slot{t, delta};
  ++count_[sv];
}

void conn_apply_move(ConnTable& conn, const Graph& g, graph::VertexId v,
                     PartId from, PartId to) {
  const auto adj = g.adjacency(v);
  for (std::size_t k = 0; k < adj.size(); ++k) {
    // Remove-first so the touched rows never exceed min(deg, p) slots.
    conn.add(adj.nbrs[k], from, -adj.wgts[k]);
    conn.add(adj.nbrs[k], to, adj.wgts[k]);
  }
}

void QuotientGraph::build(const Graph& g, const std::vector<PartId>& assign,
                          PartId num_parts) {
  p_ = num_parts;
  cross_.assign(static_cast<std::size_t>(p_) * static_cast<std::size_t>(p_),
                0);
  unit_valid_ = false;
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    const PartId pv = assign[static_cast<std::size_t>(v)];
    const auto adj = g.adjacency(v);
    for (std::size_t k = 0; k < adj.size(); ++k) {
      const PartId pu = assign[static_cast<std::size_t>(adj.nbrs[k])];
      if (adj.nbrs[k] > v && pu != pv) at(pv, pu) += adj.wgts[k];
    }
  }
}

void QuotientGraph::touch(PartId a, PartId b, Weight delta) {
  Weight& w = at(a, b);
  const bool was_zero = w == 0;
  w += delta;
  PNR_ASSERT(w >= 0);
  if (was_zero != (w == 0)) unit_valid_ = false;  // adjacency pattern moved
}

void QuotientGraph::apply_move(const ConnTable& conn, graph::VertexId v,
                               PartId from, PartId to) {
  for (const ConnTable::Slot& s : conn.entries(v)) {
    if (s.part == from) {
      // v's edges into its old subset turn into cut between from and to.
      touch(from, to, s.weight);
    } else if (s.part == to) {
      // Formerly cut edges into the destination become internal.
      touch(from, to, -s.weight);
    } else {
      touch(from, s.part, -s.weight);
      touch(to, s.part, s.weight);
    }
  }
}

const graph::Graph& QuotientGraph::unit_graph() {
  if (!unit_valid_) {
    graph::GraphBuilder builder(p_);
    for (PartId a = 0; a < p_; ++a)
      for (PartId b = static_cast<PartId>(a + 1); b < p_; ++b)
        if (at(a, b) > 0) builder.add_edge(a, b, 1);
    unit_ = builder.build();
    unit_valid_ = true;
    prof::count("rebalance.quotient_rebuilds", 1);
  }
  return unit_;
}

std::string QuotientGraph::violation(const Graph& g,
                                     const Partition& pi) const {
  QuotientGraph fresh;
  fresh.build(g, pi.assign, pi.num_parts);
  if (fresh.p_ != p_) return "quotient graph part count diverged";
  for (PartId a = 0; a < p_; ++a)
    for (PartId b = static_cast<PartId>(a + 1); b < p_; ++b)
      if (fresh.cross(a, b) != cross(a, b))
        return "quotient cut weight diverged from recompute for pair (" +
               std::to_string(a) + "," + std::to_string(b) + ")";
  return {};
}

}  // namespace pnr::part
