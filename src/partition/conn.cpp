#include "partition/conn.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace pnr::part {

void ConnTable::build(const Graph& g, const std::vector<PartId>& assign,
                      PartId num_parts) {
  const auto n = static_cast<std::size_t>(g.num_vertices());
  offset_.assign(n + 1, 0);
  count_.assign(n, 0);
  // Row capacity = min(deg, p): a row can never hold more distinct subsets.
  for (std::size_t v = 0; v < n; ++v)
    offset_[v + 1] =
        offset_[v] + std::min<std::int64_t>(
                         g.degree(static_cast<graph::VertexId>(v)), num_parts);
  pool_.assign(static_cast<std::size_t>(offset_[n]), Slot{0, 0});
  for (std::size_t v = 0; v < n; ++v) {
    const auto adj = g.adjacency(static_cast<graph::VertexId>(v));
    for (std::size_t k = 0; k < adj.size(); ++k)
      add(static_cast<graph::VertexId>(v),
          assign[static_cast<std::size_t>(adj.nbrs[k])], adj.wgts[k]);
  }
}

void ConnTable::add(graph::VertexId v, PartId t, Weight delta) {
  if (delta == 0) return;
  const auto sv = static_cast<std::size_t>(v);
  Slot* row = pool_.data() + offset_[sv];
  const std::int32_t cnt = count_[sv];
  for (std::int32_t i = 0; i < cnt; ++i) {
    if (row[i].part != t) continue;
    row[i].weight += delta;
    PNR_ASSERT(row[i].weight >= 0);
    if (row[i].weight == 0) {
      row[i] = row[cnt - 1];
      --count_[sv];
    }
    return;
  }
  PNR_ASSERT(delta > 0);
  PNR_ASSERT(offset_[sv] + cnt < offset_[sv + 1]);
  row[cnt] = Slot{t, delta};
  ++count_[sv];
}

void conn_apply_move(ConnTable& conn, const Graph& g, graph::VertexId v,
                     PartId from, PartId to) {
  const auto adj = g.adjacency(v);
  for (std::size_t k = 0; k < adj.size(); ++k) {
    // Remove-first so the touched rows never exceed min(deg, p) slots.
    conn.add(adj.nbrs[k], from, -adj.wgts[k]);
    conn.add(adj.nbrs[k], to, adj.wgts[k]);
  }
}

}  // namespace pnr::part
