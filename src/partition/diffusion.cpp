#include "partition/diffusion.hpp"

#include <algorithm>
#include <cmath>

#include "graph/builder.hpp"
#include "graph/laplacian.hpp"
#include "util/assert.hpp"

namespace pnr::part {

graph::Graph processor_graph(const Graph& g, const Partition& pi) {
  PNR_REQUIRE(pi.valid_for(g));
  graph::GraphBuilder builder(pi.num_parts);
  const auto weights = part_weights(g, pi);
  for (PartId i = 0; i < pi.num_parts; ++i)
    builder.set_vertex_weight(i, weights[static_cast<std::size_t>(i)]);
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    const PartId pv = pi.assign[static_cast<std::size_t>(v)];
    const auto nbrs = g.neighbors(v);
    const auto wgts = g.edge_weights(v);
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      const PartId pu = pi.assign[static_cast<std::size_t>(nbrs[k])];
      if (nbrs[k] > v && pu != pv) builder.add_edge(pv, pu, wgts[k]);
    }
  }
  return builder.build();
}

std::vector<double> hu_blake_potentials(const graph::Graph& h,
                                        const std::vector<double>& load) {
  // Hu–Blake uses the unweighted Laplacian of H; rebuild H with unit edge
  // weights so heavily-connected neighbors are not favored.
  graph::GraphBuilder builder(h.num_vertices());
  for (graph::VertexId v = 0; v < h.num_vertices(); ++v)
    for (graph::VertexId u : h.neighbors(v))
      if (u > v) builder.add_edge(v, u, 1);
  return hu_blake_potentials_unit(builder.build(), load);
}

std::vector<double> hu_blake_potentials_unit(const graph::Graph& unit,
                                             const std::vector<double>& load) {
  HuBlakeScratch scratch;
  if (!hu_blake_potentials_unit(unit, load, scratch)) return {};
  return std::move(scratch.lambda);
}

bool hu_blake_potentials_unit(const graph::Graph& unit,
                              const std::vector<double>& load,
                              HuBlakeScratch& scratch) {
  const auto p = static_cast<std::size_t>(unit.num_vertices());
  PNR_REQUIRE(load.size() == p);
  scratch.lambda.assign(p, 0.0);
  const int iters =
      graph::laplacian_solve_cg(unit, load, scratch.lambda, 1e-10,
                                static_cast<int>(p) * 40 + 100, &scratch.cg);
  return iters >= 0;
}

DiffusionResult diffusion_rebalance(const Graph& g, Partition& pi,
                                    const DiffusionOptions& options) {
  DiffusionResult result;
  const double avg = static_cast<double>(g.total_vertex_weight()) /
                     static_cast<double>(pi.num_parts);

  for (int sweep = 0; sweep < options.max_sweeps; ++sweep) {
    const auto weights = part_weights(g, pi);
    double max_excess = 0.0;
    std::vector<double> load(weights.size());
    for (std::size_t i = 0; i < weights.size(); ++i) {
      load[i] = static_cast<double>(weights[i]) - avg;
      max_excess = std::max(max_excess, std::abs(load[i]));
    }
    if (max_excess <= std::max(1.0, 0.01 * avg)) break;

    const auto h = processor_graph(g, pi);
    const auto lambda = hu_blake_potentials(h, load);
    if (lambda.empty()) break;  // disconnected processor graph

    // Remaining flow to push across each directed adjacent pair.
    bool moved_any = false;
    for (PartId i = 0; i < pi.num_parts; ++i) {
      const auto nbrs = h.neighbors(i);
      for (graph::VertexId j : nbrs) {
        double flow = lambda[static_cast<std::size_t>(i)] -
                      lambda[static_cast<std::size_t>(j)];
        if (flow <= options.flow_tolerance) continue;

        // Candidates: vertices of subset i on the boundary with subset j,
        // best cut gain first.
        struct Cand {
          Weight gain;
          graph::VertexId v;
        };
        std::vector<Cand> cands;
        for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
          if (pi.assign[static_cast<std::size_t>(v)] != i) continue;
          Weight to_j = 0, to_i = 0;
          const auto vn = g.neighbors(v);
          const auto vw = g.edge_weights(v);
          for (std::size_t k = 0; k < vn.size(); ++k) {
            const PartId pk = pi.assign[static_cast<std::size_t>(vn[k])];
            if (pk == static_cast<PartId>(j)) to_j += vw[k];
            else if (pk == i) to_i += vw[k];
          }
          if (to_j > 0) cands.push_back({to_j - to_i, v});
        }
        std::sort(cands.begin(), cands.end(), [](const Cand& a, const Cand& b) {
          if (a.gain != b.gain) return a.gain > b.gain;
          return a.v < b.v;
        });
        for (const Cand& c : cands) {
          if (flow <= options.flow_tolerance) break;
          pi.assign[static_cast<std::size_t>(c.v)] = static_cast<PartId>(j);
          flow -= static_cast<double>(g.vertex_weight(c.v));
          ++result.moves;
          moved_any = true;
        }
      }
    }
    ++result.sweeps;
    if (!moved_any) break;
  }
  return result;
}

}  // namespace pnr::part
