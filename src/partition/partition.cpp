#include "partition/partition.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace pnr::part {

bool Partition::valid_for(const Graph& g) const {
  if (num_parts <= 0) return false;
  if (assign.size() != static_cast<std::size_t>(g.num_vertices())) return false;
  for (PartId p : assign)
    if (p < 0 || p >= num_parts) return false;
  return true;
}

Weight cut_size(const Graph& g, const Partition& pi) {
  PNR_REQUIRE(pi.valid_for(g));
  Weight cut = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto nbrs = g.neighbors(v);
    const auto wgts = g.edge_weights(v);
    for (std::size_t k = 0; k < nbrs.size(); ++k)
      if (nbrs[k] > v &&
          pi.assign[static_cast<std::size_t>(nbrs[k])] !=
              pi.assign[static_cast<std::size_t>(v)])
        cut += wgts[k];
  }
  return cut;
}

std::vector<Weight> part_weights(const Graph& g, const Partition& pi) {
  PNR_REQUIRE(pi.valid_for(g));
  std::vector<Weight> w(static_cast<std::size_t>(pi.num_parts), 0);
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    w[static_cast<std::size_t>(pi.assign[static_cast<std::size_t>(v)])] +=
        g.vertex_weight(v);
  return w;
}

double imbalance(const Graph& g, const Partition& pi) {
  const auto w = part_weights(g, pi);
  const double avg =
      static_cast<double>(g.total_vertex_weight()) / pi.num_parts;
  if (avg == 0.0) return 0.0;
  Weight max_w = 0;
  for (Weight x : w) max_w = std::max(max_w, x);
  return static_cast<double>(max_w) / avg - 1.0;
}

Weight migration_cost(const Graph& g, const Partition& old_pi,
                      const Partition& new_pi) {
  PNR_REQUIRE(old_pi.valid_for(g) && new_pi.valid_for(g));
  Weight moved = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    if (old_pi.assign[static_cast<std::size_t>(v)] !=
        new_pi.assign[static_cast<std::size_t>(v)])
      moved += g.vertex_weight(v);
  return moved;
}

double balance_cost(const Graph& g, const Partition& pi) {
  const auto w = part_weights(g, pi);
  const double avg =
      static_cast<double>(g.total_vertex_weight()) / pi.num_parts;
  double cost = 0.0;
  for (Weight x : w) {
    const double d = static_cast<double>(x) - avg;
    cost += d * d;
  }
  return cost;
}

double repartition_cost(const Graph& g, const Partition& old_pi,
                        const Partition& new_pi, double alpha, double beta) {
  return static_cast<double>(cut_size(g, new_pi)) +
         alpha * static_cast<double>(migration_cost(g, old_pi, new_pi)) +
         beta * balance_cost(g, new_pi);
}

std::int64_t moved_vertices(const Partition& old_pi, const Partition& new_pi) {
  PNR_REQUIRE(old_pi.assign.size() == new_pi.assign.size());
  std::int64_t moved = 0;
  for (std::size_t v = 0; v < old_pi.assign.size(); ++v)
    if (old_pi.assign[v] != new_pi.assign[v]) ++moved;
  return moved;
}

bool all_parts_used(const Graph& g, const Partition& pi) {
  const auto w = part_weights(g, pi);
  std::vector<bool> used(static_cast<std::size_t>(pi.num_parts), false);
  for (PartId p : pi.assign) used[static_cast<std::size_t>(p)] = true;
  (void)w;
  return std::all_of(used.begin(), used.end(), [](bool b) { return b; });
}

}  // namespace pnr::part
