#include "partition/partition.hpp"

#include <algorithm>

#include "exec/pool.hpp"
#include "util/assert.hpp"

namespace pnr::part {

namespace {

/// Metric scans are integer reductions: commutative and associative, so the
/// chunked pool reduction is exactly the legacy serial loop for any pool
/// size (including one thread).
constexpr exec::Chunking kMetricChunking{4096, 4096};

}  // namespace

bool Partition::valid_for(const Graph& g) const {
  if (num_parts <= 0) return false;
  if (assign.size() != static_cast<std::size_t>(g.num_vertices())) return false;
  for (PartId p : assign)
    if (p < 0 || p >= num_parts) return false;
  return true;
}

Weight cut_size(const Graph& g, const Partition& pi) {
  PNR_REQUIRE(pi.valid_for(g));
  return exec::default_pool().parallel_reduce(
      g.num_vertices(), Weight{0},
      [&](std::int64_t b, std::int64_t e) {
        Weight cut = 0;
        for (std::int64_t i = b; i < e; ++i) {
          const auto v = static_cast<VertexId>(i);
          const auto nbrs = g.neighbors(v);
          const auto wgts = g.edge_weights(v);
          for (std::size_t k = 0; k < nbrs.size(); ++k)
            if (nbrs[k] > v &&
                pi.assign[static_cast<std::size_t>(nbrs[k])] !=
                    pi.assign[static_cast<std::size_t>(v)])
              cut += wgts[k];
        }
        return cut;
      },
      [](Weight a, Weight b) { return a + b; }, kMetricChunking);
}

std::vector<Weight> part_weights(const Graph& g, const Partition& pi) {
  PNR_REQUIRE(pi.valid_for(g));
  const auto parts = static_cast<std::size_t>(pi.num_parts);
  return exec::default_pool().parallel_reduce(
      g.num_vertices(), std::vector<Weight>(parts, 0),
      [&](std::int64_t b, std::int64_t e) {
        std::vector<Weight> w(parts, 0);
        for (std::int64_t i = b; i < e; ++i) {
          const auto v = static_cast<VertexId>(i);
          w[static_cast<std::size_t>(
              pi.assign[static_cast<std::size_t>(v)])] += g.vertex_weight(v);
        }
        return w;
      },
      [](std::vector<Weight> a, std::vector<Weight> b) {
        for (std::size_t i = 0; i < a.size(); ++i) a[i] += b[i];
        return a;
      },
      kMetricChunking);
}

double imbalance(const Graph& g, const Partition& pi) {
  const auto w = part_weights(g, pi);
  const double avg =
      static_cast<double>(g.total_vertex_weight()) / pi.num_parts;
  if (avg == 0.0) return 0.0;
  Weight max_w = 0;
  for (Weight x : w) max_w = std::max(max_w, x);
  return static_cast<double>(max_w) / avg - 1.0;
}

Weight migration_cost(const Graph& g, const Partition& old_pi,
                      const Partition& new_pi) {
  PNR_REQUIRE(old_pi.valid_for(g) && new_pi.valid_for(g));
  return exec::default_pool().parallel_reduce(
      g.num_vertices(), Weight{0},
      [&](std::int64_t b, std::int64_t e) {
        Weight moved = 0;
        for (std::int64_t i = b; i < e; ++i) {
          const auto v = static_cast<std::size_t>(i);
          if (old_pi.assign[v] != new_pi.assign[v])
            moved += g.vertex_weight(static_cast<VertexId>(i));
        }
        return moved;
      },
      [](Weight a, Weight b) { return a + b; }, kMetricChunking);
}

double balance_cost(const Graph& g, const Partition& pi) {
  const auto w = part_weights(g, pi);
  const double avg =
      static_cast<double>(g.total_vertex_weight()) / pi.num_parts;
  double cost = 0.0;
  for (Weight x : w) {
    const double d = static_cast<double>(x) - avg;
    cost += d * d;
  }
  return cost;
}

double repartition_cost(const Graph& g, const Partition& old_pi,
                        const Partition& new_pi, double alpha, double beta) {
  return static_cast<double>(cut_size(g, new_pi)) +
         alpha * static_cast<double>(migration_cost(g, old_pi, new_pi)) +
         beta * balance_cost(g, new_pi);
}

std::int64_t moved_vertices(const Partition& old_pi, const Partition& new_pi) {
  PNR_REQUIRE(old_pi.assign.size() == new_pi.assign.size());
  return exec::default_pool().parallel_reduce(
      static_cast<std::int64_t>(old_pi.assign.size()), std::int64_t{0},
      [&](std::int64_t b, std::int64_t e) {
        std::int64_t moved = 0;
        for (std::int64_t i = b; i < e; ++i) {
          const auto v = static_cast<std::size_t>(i);
          if (old_pi.assign[v] != new_pi.assign[v]) ++moved;
        }
        return moved;
      },
      [](std::int64_t a, std::int64_t b) { return a + b; }, kMetricChunking);
}

bool all_parts_used(const Graph& g, const Partition& pi) {
  const auto w = part_weights(g, pi);
  std::vector<bool> used(static_cast<std::size_t>(pi.num_parts), false);
  for (PartId p : pi.assign) used[static_cast<std::size_t>(p)] = true;
  (void)w;
  return std::all_of(used.begin(), used.end(), [](bool b) { return b; });
}

}  // namespace pnr::part
