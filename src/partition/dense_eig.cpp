#include "partition/dense_eig.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/assert.hpp"
#include "util/prof.hpp"

namespace pnr::part {

void jacobi_eigensymm(const std::vector<double>& matrix, int n,
                      std::vector<double>& eigenvalues,
                      std::vector<double>& eigenvectors) {
  PNR_PROF_SPAN("eig.jacobi");
  PNR_REQUIRE(n >= 1);
  PNR_REQUIRE(matrix.size() == static_cast<std::size_t>(n) * n);
  std::vector<double> a = matrix;
  std::vector<double> v(static_cast<std::size_t>(n) * n, 0.0);
  for (int i = 0; i < n; ++i) v[static_cast<std::size_t>(i) * n + i] = 1.0;

  auto at = [&](std::vector<double>& m, int r, int c) -> double& {
    return m[static_cast<std::size_t>(r) * n + c];
  };

  const int max_sweeps = 100;
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (int p = 0; p < n; ++p)
      for (int q = p + 1; q < n; ++q) off += at(a, p, q) * at(a, p, q);
    if (off < 1e-22) break;
    prof::count("eig.jacobi_sweeps");

    for (int p = 0; p < n; ++p)
      for (int q = p + 1; q < n; ++q) {
        const double apq = at(a, p, q);
        if (std::abs(apq) < 1e-300) continue;
        const double theta = (at(a, q, q) - at(a, p, p)) / (2.0 * apq);
        const double t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        const double tau = s / (1.0 + c);

        const double app = at(a, p, p), aqq = at(a, q, q);
        at(a, p, p) = app - t * apq;
        at(a, q, q) = aqq + t * apq;
        at(a, p, q) = at(a, q, p) = 0.0;
        for (int k = 0; k < n; ++k) {
          if (k != p && k != q) {
            const double akp = at(a, k, p), akq = at(a, k, q);
            at(a, k, p) = at(a, p, k) = akp - s * (akq + tau * akp);
            at(a, k, q) = at(a, q, k) = akq + s * (akp - tau * akq);
          }
          const double vkp = at(v, k, p), vkq = at(v, k, q);
          at(v, k, p) = vkp - s * (vkq + tau * vkp);
          at(v, k, q) = vkq + s * (vkp - tau * vkq);
        }
      }
  }

  // Sort eigenpairs ascending by eigenvalue.
  std::vector<int> idx(static_cast<std::size_t>(n));
  std::iota(idx.begin(), idx.end(), 0);
  std::vector<double> diag(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) diag[static_cast<std::size_t>(i)] = at(a, i, i);
  std::sort(idx.begin(), idx.end(),
            [&](int x, int y) { return diag[static_cast<std::size_t>(x)] <
                                        diag[static_cast<std::size_t>(y)]; });

  eigenvalues.resize(static_cast<std::size_t>(n));
  eigenvectors.assign(static_cast<std::size_t>(n) * n, 0.0);
  for (int k = 0; k < n; ++k) {
    const int col = idx[static_cast<std::size_t>(k)];
    eigenvalues[static_cast<std::size_t>(k)] =
        diag[static_cast<std::size_t>(col)];
    for (int r = 0; r < n; ++r)
      eigenvectors[static_cast<std::size_t>(k) * n + r] = at(v, r, col);
  }
}

}  // namespace pnr::part
