#pragma once
// Recursive bisection driver shared by RSB, Multilevel-KL and the inertial
// partitioner: split p into ⌈p/2⌉ / ⌊p/2⌋ with proportional weight targets,
// bisect, extract the two induced subgraphs and recurse.

#include <functional>
#include <vector>

#include "graph/csr.hpp"
#include "partition/partition.hpp"
#include "util/rng.hpp"

namespace pnr::part {

/// A bisector maps (graph, target weight of side 0, rng) to a 0/1 labeling.
using Bisector = std::function<std::vector<PartId>(
    const Graph&, Weight target0, util::Rng& rng)>;

/// p-way partition by recursive bisection; labels are 0..p-1.
Partition recursive_partition(const Graph& g, PartId p, const Bisector& bisect,
                              util::Rng& rng);

}  // namespace pnr::part
