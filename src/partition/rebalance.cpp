#include "partition/rebalance.hpp"

#include <algorithm>
#include <cmath>

#include "partition/diffusion.hpp"
#include "util/assert.hpp"

namespace pnr::part {

namespace {

/// One flow-directed sweep: move boundary vertices along the Hu–Blake
/// potentials until each directed flow is (approximately) satisfied.
/// Vertices move at most once per sweep, which rules out ping-pong.
struct SweepState {
  std::vector<Weight> weights;
  std::vector<std::int64_t> counts;
  std::vector<char> moved;
};

std::int64_t run_sweep(const Graph& g, Partition& pi,
                       const RebalanceOptions& options,
                       const std::vector<Weight>& targets, SweepState& state,
                       Weight& weight_moved) {
  const auto p = static_cast<std::size_t>(pi.num_parts);
  std::vector<double> load(p);
  for (std::size_t i = 0; i < p; ++i)
    load[i] = static_cast<double>(state.weights[i]) -
              static_cast<double>(targets[i]);

  const auto h = processor_graph(g, pi);
  const auto lambda = hu_blake_potentials(h, load);
  if (lambda.empty()) return 0;  // disconnected processor graph

  std::fill(state.moved.begin(), state.moved.end(), false);
  std::int64_t moves = 0;

  for (PartId i = 0; i < pi.num_parts; ++i) {
    for (const graph::VertexId j : h.neighbors(i)) {
      double flow = lambda[static_cast<std::size_t>(i)] -
                    lambda[static_cast<std::size_t>(j)];
      if (flow <= 0.5) continue;

      // Candidates of subset i on the boundary with subset j, by gain.
      struct Cand {
        double gain;
        Weight w;
        graph::VertexId v;
      };
      std::vector<Cand> cands;
      for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
        const auto sv = static_cast<std::size_t>(v);
        if (pi.assign[sv] != i || state.moved[sv]) continue;
        Weight to_j = 0, internal = 0;
        const auto nbrs = g.neighbors(v);
        const auto wgts = g.edge_weights(v);
        for (std::size_t k = 0; k < nbrs.size(); ++k) {
          const PartId q = pi.assign[static_cast<std::size_t>(nbrs[k])];
          if (q == static_cast<PartId>(j)) to_j += wgts[k];
          else if (q == i) internal += wgts[k];
        }
        if (to_j == 0) continue;
        double gain = static_cast<double>(to_j - internal);
        if (options.alpha > 0.0 && options.home) {
          const PartId home = (*options.home)[sv];
          gain += options.alpha * static_cast<double>(g.vertex_weight(v)) *
                  (static_cast<double>(i != home) -
                   static_cast<double>(static_cast<PartId>(j) != home));
        }
        cands.push_back({gain, g.vertex_weight(v), v});
      }
      std::sort(cands.begin(), cands.end(), [](const Cand& a, const Cand& b) {
        if (a.gain != b.gain) return a.gain > b.gain;
        if (a.w != b.w) return a.w < b.w;
        return a.v < b.v;
      });

      auto apply = [&](const Cand& c) {
        const auto sv = static_cast<std::size_t>(c.v);
        pi.assign[sv] = static_cast<PartId>(j);
        state.moved[sv] = true;
        state.weights[static_cast<std::size_t>(i)] -= c.w;
        state.weights[static_cast<std::size_t>(j)] += c.w;
        --state.counts[static_cast<std::size_t>(i)];
        ++state.counts[static_cast<std::size_t>(j)];
        flow -= static_cast<double>(c.w);
        weight_moved += c.w;
        ++moves;
      };
      bool moved_for_pair = false;
      for (const Cand& c : cands) {
        if (flow <= 0.5) break;
        if (state.counts[static_cast<std::size_t>(i)] <= 1) break;
        // Don't overshoot badly: skip vertices much heavier than the
        // remaining flow (a lighter candidate may follow).
        if (static_cast<double>(c.w) > 2.0 * flow) continue;
        apply(c);
        moved_for_pair = true;
      }
      if (!moved_for_pair && flow > 0.5 &&
          state.counts[static_cast<std::size_t>(i)] > 1) {
        // Every candidate was heavier than the flow (deeply refined
        // regions). Moving the lightest one still helps as long as the
        // destination does not itself go over its cap.
        const Cand* lightest = nullptr;
        for (const Cand& c : cands) {
          const auto sj = static_cast<std::size_t>(j);
          const auto cap_j = static_cast<Weight>(std::ceil(
              static_cast<double>(targets[sj]) * (1.0 + options.tol)));
          if (state.weights[sj] + c.w > cap_j) continue;
          if (!lightest || c.w < lightest->w) lightest = &c;
        }
        if (lightest) apply(*lightest);
      }
    }
  }
  return moves;
}

}  // namespace

RebalanceResult rebalance_greedy(const Graph& g, Partition& pi,
                                 const RebalanceOptions& options) {
  RebalanceResult result;
  const auto n = static_cast<std::size_t>(g.num_vertices());
  const auto p = static_cast<std::size_t>(pi.num_parts);
  PNR_REQUIRE(pi.valid_for(g));
  if (options.home) PNR_REQUIRE(options.home->size() == n);

  std::vector<Weight> targets;
  if (options.targets) {
    PNR_REQUIRE(options.targets->size() == p);
    targets = *options.targets;
  } else {
    const double avg =
        static_cast<double>(g.total_vertex_weight()) / static_cast<double>(p);
    targets.assign(p, static_cast<Weight>(std::llround(avg)));
  }

  SweepState state;
  state.weights = part_weights(g, pi);
  state.counts.assign(p, 0);
  for (const PartId q : pi.assign) ++state.counts[static_cast<std::size_t>(q)];
  state.moved.assign(n, false);

  auto balanced = [&] {
    for (std::size_t i = 0; i < p; ++i) {
      const auto cap = static_cast<Weight>(std::ceil(
          static_cast<double>(targets[i]) * (1.0 + options.tol)));
      if (state.weights[i] > cap) return false;
    }
    return true;
  };

  const int max_sweeps = 64;
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    if (balanced()) {
      result.balanced = true;
      break;
    }
    const auto moves =
        run_sweep(g, pi, options, targets, state, result.weight_moved);
    result.moves += moves;
    if (moves == 0) break;
    if (options.max_moves > 0 && result.moves >= options.max_moves) break;
  }
  if (!result.balanced) result.balanced = balanced();
  return result;
}

}  // namespace pnr::part
