#include "partition/rebalance.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "check/level.hpp"
#include "partition/conn.hpp"
#include "partition/diffusion.hpp"
#include "util/assert.hpp"
#include "util/prof.hpp"

namespace pnr::part {

namespace {

/// One flow-directed sweep: move boundary vertices along the Hu–Blake
/// potentials until each directed flow is (approximately) satisfied.
/// Vertices move at most once per sweep, which rules out ping-pong.
///
/// Candidates are drawn from the incrementally maintained boundary set and
/// scored from the shared conn table (conn(v, j) − conn(v, i)), instead of
/// re-gathering every vertex's adjacency for every processor-graph edge.
struct SweepState {
  std::vector<Weight> weights;
  std::vector<std::int64_t> counts;
  /// Sweep id of v's last move; "moved this sweep" is a stamp compare, so
  /// starting a sweep costs O(1) instead of an O(n) refill.
  std::vector<std::int32_t> moved_sweep;
  std::int32_t sweep_id = 0;
  ConnTable conn;
  /// Boundary vertices bucketed by their current subset: the candidate scan
  /// for pair (i, j) walks only subset i's bucket. Membership moves with
  /// the vertex; the outcome is unchanged because candidates are fully
  /// sorted before use.
  std::vector<VertexSet> boundary;
  QuotientGraph quotient;
  /// Per-sweep scratch, hoisted so the sweep loop is allocation-free.
  std::vector<double> load;
  HuBlakeScratch hu_blake;
};

/// Refresh v's membership in its *current* subset's bucket. A mover's old
/// bucket is cleaned up at the move site (the only place a vertex changes
/// buckets).
void update_boundary(const Partition& pi, SweepState& state,
                     graph::VertexId v) {
  const PartId own = pi.assign[static_cast<std::size_t>(v)];
  auto& bucket = state.boundary[static_cast<std::size_t>(own)];
  if (state.conn.is_boundary(v, own))
    bucket.insert(v);
  else
    bucket.erase(v);
}

std::int64_t run_sweep(const Graph& g, Partition& pi,
                       const RebalanceOptions& options,
                       const std::vector<Weight>& targets, SweepState& state,
                       Weight& weight_moved) {
  const auto p = static_cast<std::size_t>(pi.num_parts);
  state.load.resize(p);
  for (std::size_t i = 0; i < p; ++i)
    state.load[i] = static_cast<double>(state.weights[i]) -
                    static_cast<double>(targets[i]);

  // The incrementally maintained quotient graph replaces the per-sweep
  // O(E) processor_graph scan; its unit CSR is cached across sweeps while
  // the adjacency pattern holds.
  const graph::Graph& h = state.quotient.unit_graph();
  if (!hu_blake_potentials_unit(h, state.load, state.hu_blake))
    return 0;  // disconnected processor graph
  const std::vector<double>& lambda = state.hu_blake.lambda;

  ++state.sweep_id;
  std::int64_t moves = 0;

  struct Cand {
    double gain;
    Weight w;
    graph::VertexId v;
  };
  std::vector<Cand> cands;

  for (PartId i = 0; i < pi.num_parts; ++i) {
    for (const graph::VertexId j : h.neighbors(i)) {
      double flow = lambda[static_cast<std::size_t>(i)] -
                    lambda[static_cast<std::size_t>(j)];
      if (flow <= 0.5) continue;

      // Candidates of subset i on the boundary with subset j, by gain. The
      // boundary bucket iterates in history order; the total-order sort
      // below makes the outcome independent of it.
      cands.clear();
      for (const graph::VertexId v :
           state.boundary[static_cast<std::size_t>(i)].items()) {
        const auto sv = static_cast<std::size_t>(v);
        if (state.moved_sweep[sv] == state.sweep_id) continue;
        const Weight to_j = state.conn.get(v, static_cast<PartId>(j));
        if (to_j == 0) continue;
        const Weight internal = state.conn.get(v, i);
        double gain = static_cast<double>(to_j - internal);
        if (options.alpha > 0.0 && options.home) {
          const PartId home = (*options.home)[sv];
          gain += options.alpha * static_cast<double>(g.vertex_weight(v)) *
                  (static_cast<double>(i != home) -
                   static_cast<double>(static_cast<PartId>(j) != home));
        }
        cands.push_back({gain, g.vertex_weight(v), v});
      }
      std::sort(cands.begin(), cands.end(), [](const Cand& a, const Cand& b) {
        if (a.gain != b.gain) return a.gain > b.gain;
        if (a.w != b.w) return a.w < b.w;
        return a.v < b.v;
      });

      auto apply = [&](const Cand& c) {
        const auto sv = static_cast<std::size_t>(c.v);
        pi.assign[sv] = static_cast<PartId>(j);
        state.moved_sweep[sv] = state.sweep_id;
        state.boundary[static_cast<std::size_t>(i)].erase(c.v);
        state.weights[static_cast<std::size_t>(i)] -= c.w;
        state.weights[static_cast<std::size_t>(j)] += c.w;
        --state.counts[static_cast<std::size_t>(i)];
        ++state.counts[static_cast<std::size_t>(j)];
        // Before conn_apply_move: the quotient deltas read v's own row,
        // which conn_apply_move never touches, but keeping this first makes
        // the data dependency explicit.
        state.quotient.apply_move(state.conn, c.v, i, static_cast<PartId>(j));
        conn_apply_move(state.conn, g, c.v, i, static_cast<PartId>(j));
        for (const graph::VertexId u : g.neighbors(c.v))
          update_boundary(pi, state, u);
        update_boundary(pi, state, c.v);
        flow -= static_cast<double>(c.w);
        weight_moved += c.w;
        ++moves;
      };
      bool moved_for_pair = false;
      for (const Cand& c : cands) {
        if (flow <= 0.5) break;
        if (state.counts[static_cast<std::size_t>(i)] <= 1) break;
        // Don't overshoot badly: skip vertices much heavier than the
        // remaining flow (a lighter candidate may follow).
        if (static_cast<double>(c.w) > 2.0 * flow) continue;
        apply(c);
        moved_for_pair = true;
      }
      if (!moved_for_pair && flow > 0.5 &&
          state.counts[static_cast<std::size_t>(i)] > 1) {
        // Every candidate was heavier than the flow (deeply refined
        // regions). Moving the lightest one still helps as long as the
        // destination does not itself go over its cap.
        const Cand* lightest = nullptr;
        for (const Cand& c : cands) {
          const auto sj = static_cast<std::size_t>(j);
          const auto cap_j = static_cast<Weight>(std::ceil(
              static_cast<double>(targets[sj]) * (1.0 + options.tol)));
          if (state.weights[sj] + c.w > cap_j) continue;
          if (!lightest || c.w < lightest->w) lightest = &c;
        }
        if (lightest) apply(*lightest);
      }
    }
  }
  return moves;
}

/// Deep audit of the incrementally maintained sweep state against a
/// from-scratch recompute (level-2 phase-boundary check).
[[maybe_unused]] std::string sweep_state_violation(const Graph& g,
                                                   const Partition& pi,
                                                   const SweepState& state) {
  if (state.weights != part_weights(g, pi))
    return "subset weights diverged from recompute";
  ConnTable fresh;
  fresh.build(g, pi.assign, pi.num_parts);
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    for (const ConnTable::Slot& s : fresh.entries(v))
      if (state.conn.get(v, s.part) != s.weight)
        return "conn row diverged from recompute at vertex " +
               std::to_string(v);
    if (state.conn.entries(v).size() != fresh.entries(v).size())
      return "conn row has phantom slots at vertex " + std::to_string(v);
    const PartId own = pi.assign[static_cast<std::size_t>(v)];
    for (PartId q = 0; q < pi.num_parts; ++q) {
      const bool want = q == own && fresh.is_boundary(v, own);
      if (state.boundary[static_cast<std::size_t>(q)].contains(v) != want)
        return "boundary bucket diverged from recompute at vertex " +
               std::to_string(v);
    }
  }
  return state.quotient.violation(g, pi);
}

}  // namespace

RebalanceResult rebalance_greedy(const Graph& g, Partition& pi,
                                 const RebalanceOptions& options,
                                 SharedConnState* shared) {
  PNR_PROF_SPAN("rebalance.greedy");
  RebalanceResult result;
  const auto n = static_cast<std::size_t>(g.num_vertices());
  const auto p = static_cast<std::size_t>(pi.num_parts);
  PNR_REQUIRE(pi.valid_for(g));
  if (options.home) PNR_REQUIRE(options.home->size() == n);

  std::vector<Weight> targets;
  if (options.targets) {
    PNR_REQUIRE(options.targets->size() == p);
    targets = *options.targets;
  } else {
    const double avg =
        static_cast<double>(g.total_vertex_weight()) / static_cast<double>(p);
    targets.assign(p, static_cast<Weight>(std::llround(avg)));
  }

  SweepState state;
  state.weights = part_weights(g, pi);
  state.counts.assign(p, 0);
  for (const PartId q : pi.assign) ++state.counts[static_cast<std::size_t>(q)];
  state.moved_sweep.assign(n, 0);
  state.sweep_id = 0;
  if (shared && shared->conn_valid) {
    PNR_ASSERT(shared->conn.rows() == n);
    state.conn = std::move(shared->conn);
  } else {
    state.conn.build(g, pi.assign, pi.num_parts);
  }
  if (shared && shared->quotient_valid)
    state.quotient = std::move(shared->quotient);
  else
    state.quotient.build(g, pi.assign, pi.num_parts);
  state.boundary.resize(p);
  for (auto& bucket : state.boundary) bucket.reset(n);
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v)
    update_boundary(pi, state, v);

  auto balanced = [&] {
    for (std::size_t i = 0; i < p; ++i) {
      const auto cap = static_cast<Weight>(std::ceil(
          static_cast<double>(targets[i]) * (1.0 + options.tol)));
      if (state.weights[i] > cap) return false;
    }
    return true;
  };

  const int max_sweeps = 64;
  int sweeps = 0;
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    if (balanced()) {
      result.balanced = true;
      break;
    }
    const auto moves =
        run_sweep(g, pi, options, targets, state, result.weight_moved);
    ++sweeps;
    result.moves += moves;
    if (moves == 0) break;
    if (options.max_moves > 0 && result.moves >= options.max_moves) break;
  }
  if (!result.balanced) result.balanced = balanced();
  if constexpr (check::kLevel >= 2)
    check::enforce_empty(sweep_state_violation(g, pi, state),
                         "rebalance.greedy");
  if (shared) {
    shared->conn = std::move(state.conn);
    shared->quotient = std::move(state.quotient);
    shared->conn_valid = true;
    shared->quotient_valid = true;
  }
  prof::count("rebalance.sweeps", sweeps);
  prof::count("rebalance.moves", result.moves);
  return result;
}

}  // namespace pnr::part
