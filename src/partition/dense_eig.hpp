#pragma once
// Dense symmetric eigensolver (cyclic Jacobi rotations) for the small
// matrices at the bottom of the multilevel Fiedler computation and for the
// 2×2/3×3 inertia matrices of the geometric partitioner.

#include <vector>

namespace pnr::part {

/// Eigendecomposition of a symmetric n×n row-major matrix. On return
/// `eigenvalues` is ascending and row k of `eigenvectors` (row-major n×n)
/// holds the unit eigenvector for eigenvalues[k].
void jacobi_eigensymm(const std::vector<double>& matrix, int n,
                      std::vector<double>& eigenvalues,
                      std::vector<double>& eigenvectors);

}  // namespace pnr::part
