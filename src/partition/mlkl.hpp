#pragma once
// Multilevel-KL (Hendrickson–Leland style, the Chaco algorithm the paper
// uses as its quality baseline): heavy-edge-matching contraction, greedy
// graph growing on the coarsest graph, KL/FM refinement during uncoarsening,
// applied per bisection inside recursive bisection for p-way partitions.

#include "partition/partition.hpp"
#include "util/rng.hpp"

namespace pnr::part {

struct MlklOptions {
  graph::VertexId coarsest_size = 64;  ///< stop contracting below this
  double imbalance_tol = 0.03;         ///< hard per-bisection balance cap
  int fm_passes = 6;
  bool random_matching = false;        ///< ablation: random instead of HEM
};

/// Multilevel bisection: returns 0/1 sides with side-0 weight ≈ target0.
std::vector<PartId> mlkl_bisect(const Graph& g, Weight target0,
                                util::Rng& rng, const MlklOptions& options);

/// p-way Multilevel-KL via recursive multilevel bisection.
Partition multilevel_kl(const Graph& g, PartId p, util::Rng& rng,
                        const MlklOptions& options = {});

}  // namespace pnr::part
