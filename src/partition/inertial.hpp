#pragma once
// Geometric (inertial) recursive bisection — the coordinate-based family the
// paper's Section 3.1 discusses (Miller et al. [21]): project vertices onto
// the principal axis of their weighted inertia tensor and split at the
// weighted median. Scalable but lower quality than spectral, which we use in
// the ablation benches.

#include <span>
#include <vector>

#include "partition/partition.hpp"
#include "util/rng.hpp"

namespace pnr::part {

/// `coords` is row-major n×dim (dim = 2 or 3).
std::vector<PartId> inertial_bisect(const Graph& g,
                                    std::span<const double> coords, int dim,
                                    Weight target0);

Partition inertial_partition(const Graph& g, std::span<const double> coords,
                             int dim, PartId p, util::Rng& rng);

}  // namespace pnr::part
