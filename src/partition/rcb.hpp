#pragma once
// Recursive Coordinate Bisection: split at the weighted median along the
// coordinate axis of largest extent, recurse. The simplest member of the
// geometric family of Section 3.1 — cheaper but lower quality than inertial
// bisection (which rotates to the principal axis) and far below spectral.

#include <span>
#include <vector>

#include "partition/partition.hpp"
#include "util/rng.hpp"

namespace pnr::part {

/// `coords` is row-major n×dim (dim = 2 or 3).
std::vector<PartId> rcb_bisect(const Graph& g, std::span<const double> coords,
                               int dim, Weight target0);

Partition rcb_partition(const Graph& g, std::span<const double> coords,
                        int dim, PartId p);

}  // namespace pnr::part
