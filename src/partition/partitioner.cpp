#include "partition/partitioner.hpp"

#include "partition/inertial.hpp"
#include "partition/mlkl.hpp"
#include "partition/rcb.hpp"
#include "partition/rsb.hpp"
#include "util/assert.hpp"

namespace pnr::part {

std::optional<Method> parse_method(const std::string& name) {
  // Accepts the method_name display names too, so the parse/name pair
  // round-trips for every enum value.
  if (name == "mlkl" || name == "multilevel-kl" || name == "Multilevel-KL")
    return Method::kMultilevelKL;
  if (name == "rsb" || name == "RSB") return Method::kRSB;
  if (name == "inertial" || name == "geometric" || name == "Inertial")
    return Method::kInertial;
  if (name == "rcb" || name == "coordinate" || name == "RCB")
    return Method::kRCB;
  if (name == "random" || name == "Random") return Method::kRandom;
  return std::nullopt;
}

const char* method_name(Method m) {
  switch (m) {
    case Method::kMultilevelKL: return "Multilevel-KL";
    case Method::kRSB: return "RSB";
    case Method::kInertial: return "Inertial";
    case Method::kRCB: return "RCB";
    case Method::kRandom: return "Random";
  }
  return "?";
}

Partition make_partition(const Graph& g, PartId p, util::Rng& rng,
                         const PartitionerOptions& options) {
  PNR_REQUIRE(p >= 1);
  switch (options.method) {
    case Method::kMultilevelKL: {
      MlklOptions mo;
      mo.imbalance_tol = options.imbalance_tol;
      return multilevel_kl(g, p, rng, mo);
    }
    case Method::kRSB: {
      RsbOptions ro;
      ro.imbalance_tol = options.imbalance_tol;
      return rsb(g, p, rng, ro);
    }
    case Method::kInertial:
      PNR_REQUIRE_MSG(!options.coords.empty(),
                      "inertial partitioning needs coordinates");
      return inertial_partition(g, options.coords, options.dim, p, rng);
    case Method::kRCB:
      PNR_REQUIRE_MSG(!options.coords.empty(),
                      "coordinate bisection needs coordinates");
      return rcb_partition(g, options.coords, options.dim, p);
    case Method::kRandom: {
      Partition pi(p, std::vector<PartId>(
                          static_cast<std::size_t>(g.num_vertices())));
      for (auto& a : pi.assign)
        a = static_cast<PartId>(rng.next_below(static_cast<std::uint64_t>(p)));
      return pi;
    }
  }
  PNR_REQUIRE(false);
  return {};
}

}  // namespace pnr::part
