#pragma once
// Recursive Spectral Bisection (Pothen–Simon–Liou), implemented multilevel in
// the style of Barnard–Simon's fast RSB (the paper's reference [2]): the
// Fiedler vector is computed on a contracted graph, interpolated, and
// smoothed by projected Rayleigh-quotient descent; the smallest graphs use a
// dense Jacobi eigensolver. Vertices are split at the weighted median of the
// Fiedler values. Optionally each bisection is polished with KL, matching
// the usual Chaco configuration.

#include <vector>

#include "partition/partition.hpp"
#include "util/rng.hpp"

namespace pnr::part {

struct RsbOptions {
  int dense_threshold = 96;    ///< solve densely at or below this many vertices
  int smooth_iterations = 80;  ///< Rayleigh-quotient descent steps per level
  bool kl_polish = true;       ///< run FM on each bisection (Chaco's RSB+KL)
  double imbalance_tol = 0.03;
  int fm_passes = 4;
};

/// Approximate Fiedler vector (unit norm, orthogonal to the ones vector).
std::vector<double> fiedler_vector(const Graph& g, util::Rng& rng,
                                   const RsbOptions& options = {});

/// Spectral bisection: 0/1 sides with side-0 weight ≈ target0.
std::vector<PartId> rsb_bisect(const Graph& g, Weight target0, util::Rng& rng,
                               const RsbOptions& options = {});

/// p-way Recursive Spectral Bisection.
Partition rsb(const Graph& g, PartId p, util::Rng& rng,
              const RsbOptions& options = {});

}  // namespace pnr::part
