#include "partition/remap.hpp"

#include <algorithm>
#include <limits>

#include "util/assert.hpp"

namespace pnr::part {

std::vector<Weight> overlap_matrix(const Graph& g, const Partition& old_pi,
                                   const Partition& new_pi) {
  PNR_REQUIRE(old_pi.valid_for(g) && new_pi.valid_for(g));
  PNR_REQUIRE(old_pi.num_parts == new_pi.num_parts);
  const auto p = static_cast<std::size_t>(old_pi.num_parts);
  std::vector<Weight> overlap(p * p, 0);
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto i = static_cast<std::size_t>(old_pi.assign[static_cast<std::size_t>(v)]);
    const auto j = static_cast<std::size_t>(new_pi.assign[static_cast<std::size_t>(v)]);
    overlap[i * p + j] += g.vertex_weight(v);
  }
  return overlap;
}

std::vector<PartId> hungarian_min_cost(const std::vector<Weight>& cost,
                                       PartId p) {
  // Jonker–Volgenant-style shortest augmenting path formulation with
  // potentials; indices are 1-based internally as is conventional.
  const auto n = static_cast<std::size_t>(p);
  PNR_REQUIRE(cost.size() == n * n);
  const Weight kInf = std::numeric_limits<Weight>::max() / 4;

  std::vector<Weight> u(n + 1, 0), v(n + 1, 0);
  std::vector<std::size_t> match(n + 1, 0);  // match[col] = row
  std::vector<std::size_t> way(n + 1, 0);

  for (std::size_t i = 1; i <= n; ++i) {
    match[0] = i;
    std::size_t j0 = 0;
    std::vector<Weight> minv(n + 1, kInf);
    std::vector<char> used(n + 1, false);
    do {
      used[j0] = true;
      const std::size_t i0 = match[j0];
      Weight delta = kInf;
      std::size_t j1 = 0;
      for (std::size_t j = 1; j <= n; ++j) {
        if (used[j]) continue;
        const Weight cur = cost[(i0 - 1) * n + (j - 1)] - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      for (std::size_t j = 0; j <= n; ++j) {
        if (used[j]) {
          u[match[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (match[j0] != 0);
    do {
      const std::size_t j1 = way[j0];
      match[j0] = match[j1];
      j0 = j1;
    } while (j0 != 0);
  }

  std::vector<PartId> row_to_col(n, -1);
  for (std::size_t j = 1; j <= n; ++j)
    if (match[j] != 0)
      row_to_col[match[j] - 1] = static_cast<PartId>(j - 1);
  return row_to_col;
}

std::vector<PartId> best_relabel(const Graph& g, const Partition& old_pi,
                                 const Partition& new_pi) {
  const auto p = static_cast<std::size_t>(old_pi.num_parts);
  const auto overlap = overlap_matrix(g, old_pi, new_pi);
  // Maximize retained weight == minimize (max − overlap). Rows are new
  // labels j, columns are processors i; sigma[j] = chosen processor.
  Weight max_entry = 0;
  for (Weight w : overlap) max_entry = std::max(max_entry, w);
  std::vector<Weight> cost(p * p);
  for (std::size_t j = 0; j < p; ++j)
    for (std::size_t i = 0; i < p; ++i)
      cost[j * p + i] = max_entry - overlap[i * p + j];
  return hungarian_min_cost(cost, old_pi.num_parts);
}

Partition apply_relabel(const Partition& pi, const std::vector<PartId>& sigma) {
  PNR_REQUIRE(sigma.size() == static_cast<std::size_t>(pi.num_parts));
  Partition out(pi.num_parts, pi.assign);
  for (auto& a : out.assign) a = sigma[static_cast<std::size_t>(a)];
  return out;
}

Partition remap_to_minimize_migration(const Graph& g, const Partition& old_pi,
                                      const Partition& new_pi) {
  return apply_relabel(new_pi, best_relabel(g, old_pi, new_pi));
}

}  // namespace pnr::part
