#include "pared/driver.hpp"

#include "util/prof.hpp"
#include "util/timer.hpp"

namespace pnr::pared {

template <typename Mesh>
DriverReport AdaptiveDriver<Mesh>::step(const Field& field,
                                        const fem::MarkOptions& mark) {
  DriverReport report;

  {
    PNR_PROF_SPAN("driver.adapt");
    util::Timer timer;
    report.merges = mesh_.coarsen(fem::mark_for_coarsening(mesh_, field, mark));
    report.bisections = mesh_.refine(fem::mark_for_refinement(mesh_, field, mark));
    report.adapt_seconds = timer.seconds();
  }
  {
    PNR_PROF_SPAN("driver.repartition");
    util::Timer timer;
    report.partition = session_.step(mesh_);
    report.partition_seconds = timer.seconds();
  }
  if (options_.solve) {
    PNR_PROF_SPAN("driver.solve");
    util::Timer timer;
    const auto solved = fem::solve_poisson(mesh_, field, options_.solve_tol);
    report.solve_seconds = timer.seconds();
    report.solve_error = solved.max_error;
    report.cg_iterations = solved.cg.iterations;
  }
  return report;
}

template class AdaptiveDriver<mesh::TriMesh>;
template class AdaptiveDriver<mesh::TetMesh>;

}  // namespace pnr::pared
