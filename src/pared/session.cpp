#include "pared/session.hpp"

#include "check/check.hpp"
#include "exec/pool.hpp"
#include "util/assert.hpp"
#include "util/prof.hpp"

namespace pnr::pared {

const char* strategy_name(Strategy s) {
  switch (s) {
    case Strategy::kRSB: return "RSB";
    case Strategy::kRsbRemap: return "RSB+remap";
    case Strategy::kMlkl: return "Multilevel-KL";
    case Strategy::kMlklRemap: return "Multilevel-KL+remap";
    case Strategy::kPNR: return "PNR";
    case Strategy::kDiffusion: return "Diffusion";
    case Strategy::kMlDiffusion: return "ML-Diffusion";
  }
  return "?";
}

std::optional<Strategy> parse_strategy(const std::string& name) {
  if (name == "rsb") return Strategy::kRSB;
  if (name == "rsb-remap") return Strategy::kRsbRemap;
  if (name == "mlkl") return Strategy::kMlkl;
  if (name == "mlkl-remap") return Strategy::kMlklRemap;
  if (name == "pnr") return Strategy::kPNR;
  if (name == "diffusion") return Strategy::kDiffusion;
  if (name == "ml-diffusion") return Strategy::kMlDiffusion;
  return std::nullopt;
}

namespace {

/// Carried fine assignment from the element tags (dense leaf order);
/// nullopt when any tag is unset (first step).
std::optional<std::vector<part::PartId>> carried_assignment(
    const auto& mesh, const std::vector<mesh::ElemIdx>& elems) {
  std::vector<part::PartId> out(elems.size());
  for (std::size_t i = 0; i < elems.size(); ++i) {
    const std::int32_t tag = mesh.tag(elems[i]);
    if (tag < 0) return std::nullopt;
    out[i] = tag;
  }
  return out;
}

void adopt(auto& mesh, const std::vector<mesh::ElemIdx>& elems,
           const std::vector<part::PartId>& assign) {
  for (std::size_t i = 0; i < elems.size(); ++i)
    mesh.set_tag(elems[i], assign[i]);
}

std::int64_t count_moves(const std::vector<part::PartId>& a,
                         const std::vector<part::PartId>& b) {
  std::int64_t moves = 0;
  for (std::size_t i = 0; i < a.size(); ++i) moves += a[i] != b[i];
  return moves;
}

}  // namespace

template <typename Mesh>
void Session<Mesh>::refresh_coarse_graph(Mesh& mesh) {
  PNR_PROF_SPAN("session.coarse_dual");
  const auto delta = mesh.drain_dual_delta();
  bool rebuild = !coarse_graph_valid_ || delta.prev_epoch != dual_epoch_ ||
                 coarse_graph_.num_vertices() != mesh.num_initial_elements();
  if (!rebuild && !delta.vertices.empty()) {
    prof::count("session.dual_delta_vertices",
                static_cast<std::int64_t>(delta.vertices.size()));
    rebuild = !mesh::apply_dual_delta(mesh, delta, coarse_graph_);
  }
  if (rebuild) {
    coarse_graph_ = mesh::nested_dual_graph(mesh);
    coarse_graph_valid_ = true;
    prof::count("session.dual_rebuilds", 1);
  }
  dual_epoch_ = delta.epoch;
  // Level-2 cross-check: the incrementally patched G must equal a
  // from-scratch rebuild, array for array (same deterministic assembler, so
  // even the adjacency layout must agree).
  if constexpr (check::kLevel >= 2) {
    const auto fresh = mesh::nested_dual_graph(mesh);
    std::string violation;
    if (coarse_graph_.xadj() != fresh.xadj() ||
        coarse_graph_.adjncy() != fresh.adjncy())
      violation = "incremental coarse dual topology diverged from rebuild";
    else if (coarse_graph_.vwgt() != fresh.vwgt())
      violation = "incremental coarse dual vertex weights diverged";
    else if (coarse_graph_.adjwgt() != fresh.adjwgt())
      violation = "incremental coarse dual edge weights diverged";
    check::enforce_empty(violation, "session.coarse_dual");
  }
}

template <typename Mesh>
bool Session<Mesh>::adopt_federated_graph(Mesh& mesh, graph::Graph g) {
  refresh_coarse_graph(mesh);
  // After this refresh the next step()'s own refresh drains an empty delta
  // against a matching epoch — a no-op — so adopting here cannot shift the
  // trajectory even by a refresh reordering.
  if (g.xadj() != coarse_graph_.xadj() ||
      g.adjncy() != coarse_graph_.adjncy() ||
      g.adjwgt() != coarse_graph_.adjwgt() || g.vwgt() != coarse_graph_.vwgt())
    return false;
  coarse_graph_ = std::move(g);
  return true;
}

template <typename Mesh>
StepReport Session<Mesh>::step(Mesh& mesh) {
  PNR_PROF_SPAN("session.step");
  StepReport report;
  const auto elems = mesh.leaf_elements();
  report.elements = static_cast<std::int64_t>(elems.size());

  // Built on first use: PNR partitions the persistent coarse graph, so with
  // deferred metrics its steady-state step never touches the fine dual.
  std::optional<mesh::FineDual> dual;
  const auto ensure_dual = [&]() -> const mesh::FineDual& {
    if (!dual) {
      PNR_PROF_SPAN("session.dual_graph");
      dual.emplace(mesh::fine_dual_graph(mesh));
    }
    return *dual;
  };

  auto carried = carried_assignment(mesh, elems);
  if (carried && !defer_metrics_) {
    part::Partition prev(p_, *carried);
    report.cut_prev = part::cut_size(ensure_dual().graph, prev);
  }

  std::vector<part::PartId> fine_new;  // the freshly computed partition Π̂
  std::vector<part::PartId> adopted;   // what the session carries forward

  // Closed by hand before the metrics tail so the span measures only the
  // strategy's partitioning work.
  std::optional<prof::Span> partition_span(std::in_place, "session.partition");
  switch (strategy_) {
    case Strategy::kRSB:
    case Strategy::kRsbRemap:
    case Strategy::kMlkl:
    case Strategy::kMlklRemap: {
      part::Partition pi =
          (strategy_ == Strategy::kRSB || strategy_ == Strategy::kRsbRemap)
              ? part::rsb(ensure_dual().graph, p_, rng_)
              : part::multilevel_kl(ensure_dual().graph, p_, rng_);
      fine_new = pi.assign;
      if (carried) {
        part::Partition prev(p_, *carried);
        const auto remapped =
            part::remap_to_minimize_migration(ensure_dual().graph, prev, pi);
        report.migrated = count_moves(*carried, pi.assign);
        report.migrated_remapped = count_moves(*carried, remapped.assign);
        adopted = (strategy_ == Strategy::kRsbRemap ||
                   strategy_ == Strategy::kMlklRemap)
                      ? remapped.assign
                      : pi.assign;
      } else {
        adopted = pi.assign;
      }
      break;
    }
    case Strategy::kDiffusion:
    case Strategy::kMlDiffusion: {
      part::Partition pi =
          carried ? part::Partition(p_, *carried)
                  : part::multilevel_kl(ensure_dual().graph, p_, rng_);
      if (carried) {
        if (strategy_ == Strategy::kDiffusion)
          part::diffusion_rebalance(ensure_dual().graph, pi);
        else
          part::multilevel_diffusion(ensure_dual().graph, pi, rng_);
        report.migrated = count_moves(*carried, pi.assign);
        report.migrated_remapped = report.migrated;  // already incremental
      }
      fine_new = pi.assign;
      adopted = pi.assign;
      break;
    }
    case Strategy::kPNR: {
      refresh_coarse_graph(mesh);
      if (engine_ == engine::Kind::kMlkl) {
        // The paper's path, untouched: drive core::Pnr directly so the
        // persistent hierarchy cache and rng sequence stay bit-identical
        // to pre-engine builds.
        if (first_) {
          coarse_assign_ = pnr_.initial_partition(coarse_graph_, rng_).assign;
        } else {
          part::Partition current(p_, coarse_assign_);
          coarse_assign_ = pnr_.repartition(coarse_graph_, current, rng_,
                                            nullptr, &hier_cache_)
                               .assign;
        }
      } else {
        if (!coarse_coords_valid_) {
          coarse_coords_ = mesh::coarse_centroids(mesh);
          coarse_coords_valid_ = true;
        }
        const auto n = static_cast<std::size_t>(coarse_graph_.num_vertices());
        engine::Input in;
        in.graph = &coarse_graph_;
        in.coords = coarse_coords_;
        in.dim = n > 0 ? static_cast<int>(coarse_coords_.size() / n) : 0;
        part::Partition current(p_, coarse_assign_);
        in.previous = first_ ? nullptr : &current;
        in.parts = p_;
        in.options = pnr_.options();
        in.rng = &rng_;
        coarse_assign_ =
            engine::repartitioner(engine_).run(in, nullptr).assign;
      }
      adopted = mesh::project_coarse_assignment(mesh, elems, coarse_assign_);
      fine_new = adopted;
      if (carried) {
        report.migrated = count_moves(*carried, adopted);
        if (!defer_metrics_) {
          // The optimal relabeling is the identity for PNR (Figure 5):
          // moves are already minimal, but we report it for completeness.
          part::Partition prev(p_, *carried);
          part::Partition next(p_, adopted);
          const auto remapped =
              part::remap_to_minimize_migration(ensure_dual().graph, prev,
                                                next);
          report.migrated_remapped = count_moves(*carried, remapped.assign);
        }
      }
      break;
    }
  }

  partition_span.reset();

  if (!defer_metrics_) {
    PNR_PROF_SPAN("session.metrics");
    part::Partition adopted_pi(p_, adopted);
    report.cut_new =
        part::cut_size(ensure_dual().graph, part::Partition(p_, fine_new));
    report.imbalance = part::imbalance(ensure_dual().graph, adopted_pi);
    report.shared_vertices = mesh::shared_vertices(mesh, elems, adopted);
  }
  adopt(mesh, elems, adopted);
  first_ = false;
  last_report_ = report;
  last_had_carried_ = carried.has_value();
  last_carried_ = carried ? std::move(*carried) : std::vector<part::PartId>{};
  last_deferred_ = defer_metrics_;
  last_adapt_version_ = mesh.adapt_version();
  have_last_ = true;
  // Level-2 phase-boundary audit: the session is the one place that holds
  // every structure at once, so the full cross-structure contract (mesh ↔
  // refinement forest ↔ dual graph ↔ adopted partition) is checked here.
  if constexpr (check::kLevel >= 2) {
    const auto& dg = ensure_dual().graph;
    part::Partition adopted_pi(p_, adopted);
    check::enforce(check::check_mesh(mesh), "session.step");
    check::enforce(check::check_graph(dg), "session.step");
    check::enforce(check::check_forest(mesh, mesh::nested_dual_graph(mesh)),
                   "session.step");
    check::enforce(check::check_partition(dg, adopted_pi), "session.step");
    // Determinism cross-check for the pnr::exec runtime: recompute the
    // pooled partition metrics inside a SerialRegion (forcing the inline
    // single-chunk path) and demand bitwise-equal results. Integer
    // reductions commute, so any difference is a runtime bug.
    const part::Weight cut_par = part::cut_size(dg, adopted_pi);
    const auto weights_par = part::part_weights(dg, adopted_pi);
    {
      exec::SerialRegion serial;
      const part::Weight cut_ser = part::cut_size(dg, adopted_pi);
      const auto weights_ser = part::part_weights(dg, adopted_pi);
      std::string violation;
      if (cut_par != cut_ser)
        violation = "parallel cut_size " + std::to_string(cut_par) +
                    " != serial recompute " + std::to_string(cut_ser);
      else if (weights_par != weights_ser)
        violation = "parallel part_weights disagree with serial recompute";
      check::enforce_empty(violation, "session.step exec cross-check");
    }
  }
  return report;
}

template <typename Mesh>
StepReport Session<Mesh>::metrics(const Mesh& mesh) {
  PNR_REQUIRE_MSG(have_last_, "metrics() before any step()");
  PNR_REQUIRE_MSG(mesh.adapt_version() == last_adapt_version_,
                  "mesh adapted since the last step; deferred metrics are "
                  "unrecoverable");
  if (!last_deferred_) return last_report_;
  PNR_PROF_SPAN("session.metrics");
  const auto elems = mesh.leaf_elements();
  const auto dual = mesh::fine_dual_graph(mesh);
  // Everything deferred is recomputable from the adopted tags: adoption
  // only ever relabels the freshly computed Π̂, and cut, imbalance and
  // shared vertices are invariant under subset relabeling.
  std::vector<part::PartId> adopted(elems.size());
  for (std::size_t i = 0; i < elems.size(); ++i)
    adopted[i] = mesh.tag(elems[i]);
  part::Partition adopted_pi(p_, adopted);
  StepReport report = last_report_;
  if (last_had_carried_) {
    part::Partition prev(p_, last_carried_);
    report.cut_prev = part::cut_size(dual.graph, prev);
    if (strategy_ == Strategy::kPNR) {
      const auto remapped =
          part::remap_to_minimize_migration(dual.graph, prev, adopted_pi);
      report.migrated_remapped = count_moves(last_carried_, remapped.assign);
    }
  }
  report.cut_new = part::cut_size(dual.graph, adopted_pi);
  report.imbalance = part::imbalance(dual.graph, adopted_pi);
  report.shared_vertices = mesh::shared_vertices(mesh, elems, adopted);
  last_report_ = report;
  last_deferred_ = false;  // cached: later calls return it directly
  return report;
}

template class Session<mesh::TriMesh>;
template class Session<mesh::TetMesh>;

}  // namespace pnr::pared
