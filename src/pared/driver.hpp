#pragma once
// The full PARED loop as a reusable component: solve → estimate → mark →
// adapt → repartition, with per-phase timings. This is what Section 2
// describes as one "round of equation solving, error estimation, mesh
// adaptation, mesh repartitioning and work migration", minus the physical
// migration (tracked logically through the session's element tags; the
// message-level version lives in pnr::par::ParedRank).

#include <cstdint>
#include <type_traits>

#include "fem/estimator.hpp"
#include "fem/p1.hpp"
#include "pared/session.hpp"

namespace pnr::pared {

struct DriverOptions {
  part::PartId procs = 8;
  Strategy strategy = Strategy::kPNR;
  /// Run the P1 Poisson solve every step (costs the most time; off for
  /// partitioning-only studies).
  bool solve = false;
  double solve_tol = 1e-9;
  std::uint64_t seed = 1;
};

struct DriverReport {
  StepReport partition;        ///< the session's measures
  std::int64_t bisections = 0;
  std::int64_t merges = 0;
  double adapt_seconds = 0.0;
  double partition_seconds = 0.0;
  double solve_seconds = 0.0;
  double solve_error = 0.0;  ///< L∞ vs the analytic solution (if solving)
  int cg_iterations = 0;
};

template <typename Mesh>
class AdaptiveDriver {
 public:
  using Field = std::conditional_t<std::is_same_v<Mesh, mesh::TriMesh>,
                                   fem::ScalarField2, fem::ScalarField3>;

  AdaptiveDriver(Mesh mesh, DriverOptions options)
      : mesh_(std::move(mesh)),
        options_(options),
        session_(options.strategy, options.procs, options.seed) {}

  /// One full round against `field` using the marking policy `mark`.
  DriverReport step(const Field& field, const fem::MarkOptions& mark);

  const Mesh& mesh() const { return mesh_; }
  Mesh& mutable_mesh() { return mesh_; }
  const Session<Mesh>& session() const { return session_; }

 private:
  Mesh mesh_;
  DriverOptions options_;
  Session<Mesh> session_;
};

using AdaptiveDriver2D = AdaptiveDriver<mesh::TriMesh>;
using AdaptiveDriver3D = AdaptiveDriver<mesh::TetMesh>;

extern template class AdaptiveDriver<mesh::TriMesh>;
extern template class AdaptiveDriver<mesh::TetMesh>;

}  // namespace pnr::pared
