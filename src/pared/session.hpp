#pragma once
// Repartitioning session: owns the evolving assignment for one strategy and
// produces, after every mesh adaptation, the measurements the paper's tables
// and figures report. The previous assignment is carried across adaptation
// by the meshes' inherited element tags (children take their parent's
// processor — exactly how PARED migrates whole refinement trees).
//
// Strategies:
//   kRSB / kMlkl         partition the *fine* dual graph from scratch
//                        (Section 7's standard heuristics);
//   kRsbRemap/kMlklRemap same, then apply the optimal Biswas–Oliker subset
//                        relabeling Π̃ before adopting;
//   kPNR                 Parallel Nested Repartitioning on the coarse graph;
//   kDiffusion           Hu–Blake flow + boundary migration on the fine
//                        dual graph (Walshaw/Schloegel-style baseline).

#include <cstdint>
#include <optional>
#include <string>

#include "core/pnr.hpp"
#include "mesh/dual.hpp"
#include "mesh/metrics.hpp"
#include "partition/diffusion.hpp"
#include "partition/mldiffusion.hpp"
#include "partition/mlkl.hpp"
#include "partition/remap.hpp"
#include "partition/rsb.hpp"
#include "util/rng.hpp"

namespace pnr::pared {

enum class Strategy {
  kRSB,
  kRsbRemap,
  kMlkl,
  kMlklRemap,
  kPNR,
  kDiffusion,
  kMlDiffusion,  ///< multilevel diffusion on the fine graph (ref. [7] style)
};

const char* strategy_name(Strategy s);
std::optional<Strategy> parse_strategy(const std::string& name);

/// One adaptation step's report (all quantities in fine elements/vertices).
struct StepReport {
  std::int64_t elements = 0;        ///< |M^t| (leaves)
  graph::Weight cut_prev = 0;       ///< C_cut of the carried assignment
  graph::Weight cut_new = 0;        ///< C_cut(Π̂^t) on the fine dual graph
  std::int64_t shared_vertices = 0; ///< the paper's quality measure
  std::int64_t migrated = 0;        ///< C_migrate(Π^t, Π̂^t)
  std::int64_t migrated_remapped = 0;  ///< C_migrate(Π^t, Π̃^t)
  double imbalance = 0.0;           ///< ε of the adopted partition
};

template <typename Mesh>
class Session {
 public:
  Session(Strategy strategy, part::PartId p, std::uint64_t seed,
          core::PnrOptions pnr_options = {})
      : strategy_(strategy),
        p_(p),
        rng_(seed),
        pnr_(p, pnr_options) {}

  Strategy strategy() const { return strategy_; }
  part::PartId num_parts() const { return p_; }

  /// Partition the mesh's current leaves, adopt the result (writing it into
  /// the element tags for the next step) and report the step's measures.
  StepReport step(Mesh& mesh);

 private:
  Strategy strategy_;
  part::PartId p_;
  util::Rng rng_;
  core::Pnr pnr_;
  bool first_ = true;
  /// PNR keeps its assignment on the (persistent) coarse vertices.
  std::vector<part::PartId> coarse_assign_;
};

using Session2D = Session<mesh::TriMesh>;
using Session3D = Session<mesh::TetMesh>;

}  // namespace pnr::pared
