#pragma once
// Repartitioning session: owns the evolving assignment for one strategy and
// produces, after every mesh adaptation, the measurements the paper's tables
// and figures report. The previous assignment is carried across adaptation
// by the meshes' inherited element tags (children take their parent's
// processor — exactly how PARED migrates whole refinement trees).
//
// Strategies:
//   kRSB / kMlkl         partition the *fine* dual graph from scratch
//                        (Section 7's standard heuristics);
//   kRsbRemap/kMlklRemap same, then apply the optimal Biswas–Oliker subset
//                        relabeling Π̃ before adopting;
//   kPNR                 Parallel Nested Repartitioning on the coarse graph;
//   kDiffusion           Hu–Blake flow + boundary migration on the fine
//                        dual graph (Walshaw/Schloegel-style baseline).

#include <cstdint>
#include <optional>
#include <string>

#include "core/hierarchy_cache.hpp"
#include "core/pnr.hpp"
#include "engine/engine.hpp"
#include "mesh/dual.hpp"
#include "mesh/metrics.hpp"
#include "partition/diffusion.hpp"
#include "partition/mldiffusion.hpp"
#include "partition/mlkl.hpp"
#include "partition/remap.hpp"
#include "partition/rsb.hpp"
#include "util/rng.hpp"

namespace pnr::pared {

enum class Strategy {
  kRSB,
  kRsbRemap,
  kMlkl,
  kMlklRemap,
  kPNR,
  kDiffusion,
  kMlDiffusion,  ///< multilevel diffusion on the fine graph (ref. [7] style)
};

const char* strategy_name(Strategy s);
std::optional<Strategy> parse_strategy(const std::string& name);

/// One adaptation step's report (all quantities in fine elements/vertices).
struct StepReport {
  std::int64_t elements = 0;        ///< |M^t| (leaves)
  graph::Weight cut_prev = 0;       ///< C_cut of the carried assignment
  graph::Weight cut_new = 0;        ///< C_cut(Π̂^t) on the fine dual graph
  std::int64_t shared_vertices = 0; ///< the paper's quality measure
  std::int64_t migrated = 0;        ///< C_migrate(Π^t, Π̂^t)
  std::int64_t migrated_remapped = 0;  ///< C_migrate(Π^t, Π̃^t)
  double imbalance = 0.0;           ///< ε of the adopted partition
};

template <typename Mesh>
class Session {
 public:
  Session(Strategy strategy, part::PartId p, std::uint64_t seed,
          core::PnrOptions pnr_options = {},
          engine::Kind engine = engine::Kind::kMlkl)
      : strategy_(strategy),
        p_(p),
        rng_(seed),
        pnr_(p, pnr_options),
        engine_(engine) {}

  Strategy strategy() const { return strategy_; }
  part::PartId num_parts() const { return p_; }
  /// Backend used by the kPNR strategy (other strategies ignore it).
  engine::Kind engine() const { return engine_; }

  /// Partition the mesh's current leaves, adopt the result (writing it into
  /// the element tags for the next step) and report the step's measures.
  StepReport step(Mesh& mesh);

  /// Defer the fine-dual metrics tail of step(): with deferral on, step()
  /// fills only `elements` and `migrated` (plus whatever the strategy
  /// computes anyway) and leaves cut/imbalance/shared-vertices at zero until
  /// metrics() asks for them. For PNR this removes the fine dual-graph build
  /// from the steady-state step entirely — the strategy itself only touches
  /// the persistent coarse graph.
  void set_defer_metrics(bool defer) { defer_metrics_ = defer; }
  bool defer_metrics() const { return defer_metrics_; }

  /// The most recent step's full report, computing any deferred metrics on
  /// demand (and caching them). The mesh must not have been adapted since
  /// that step — the deferred quantities would be unrecoverable.
  StepReport metrics(const Mesh& mesh);

  /// True when metrics() is callable: at least one step has run and the
  /// mesh has not been adapted since.
  bool metrics_current(const Mesh& mesh) const {
    return have_last_ && mesh.adapt_version() == last_adapt_version_;
  }

  /// Federation hook: swap in a coarse graph assembled from shard reports
  /// (the coordinator's federated gather). The graph must equal the
  /// session's own refresh array-for-array; on any difference it is
  /// rejected and the session state is untouched, so an adopted graph can
  /// never perturb the single-process trajectory — that equality is
  /// exactly what the federation's bitwise-equivalence gate proves.
  bool adopt_federated_graph(Mesh& mesh, graph::Graph g);

  /// PNR's persistent assignment on the coarse vertices (empty before the
  /// first kPNR step).
  const std::vector<part::PartId>& coarse_assignment() const {
    return coarse_assign_;
  }

 private:
  /// Bring the persistent coarse dual graph up to date: apply the mesh's
  /// weight delta in place, or rebuild from scratch on the first step /
  /// after a drain-epoch gap.
  void refresh_coarse_graph(Mesh& mesh);

  Strategy strategy_;
  part::PartId p_;
  util::Rng rng_;
  core::Pnr pnr_;
  engine::Kind engine_ = engine::Kind::kMlkl;
  bool first_ = true;
  bool defer_metrics_ = false;
  /// PNR keeps its assignment on the (persistent) coarse vertices.
  std::vector<part::PartId> coarse_assign_;
  /// Persistent repartition state (PNR only): G built once, weight-patched
  /// per round; the contraction hierarchy cached across rounds.
  graph::Graph coarse_graph_;
  bool coarse_graph_valid_ = false;
  std::uint64_t dual_epoch_ = 0;
  /// Initial-element centroids for the geometric engines; M^0 never
  /// changes, so they are computed once on first use.
  std::vector<double> coarse_coords_;
  bool coarse_coords_valid_ = false;
  core::HierarchyCache hier_cache_;
  /// Deferred-metrics state for metrics().
  StepReport last_report_;
  std::vector<part::PartId> last_carried_;
  bool last_had_carried_ = false;
  bool last_deferred_ = false;
  bool have_last_ = false;
  std::uint64_t last_adapt_version_ = 0;
};

using Session2D = Session<mesh::TriMesh>;
using Session3D = Session<mesh::TetMesh>;

}  // namespace pnr::pared
