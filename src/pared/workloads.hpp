#pragma once
// The paper's two experimental workloads, packaged so every bench drives the
// identical mesh sequences.
//
// * CornerSeries (Section 6): adapt the initial quasi-uniform mesh toward
//   the corner singularity of the Laplace problem level by level. Each
//   level ℓ refines every leaf whose L∞ indicator exceeds τ·decay^ℓ — the
//   refined region grows outward from the corner while its interior deepens,
//   matching the paper's 12,498 → 135,371 (2D) and 9,540 → 70,185 (3D)
//   progressions in shape.
// * TransientRun (Section 10): the moving-peak Poisson problem over 100
//   time steps; each step coarsens where the peak left and refines where it
//   arrived.

#include <cstdint>

#include "fem/estimator.hpp"
#include "fem/problems.hpp"
#include "mesh/tet_mesh.hpp"
#include "mesh/tri_mesh.hpp"

namespace pnr::pared {

struct CornerOptions {
  double tau = 0.02;        ///< level-0 refinement threshold
  double decay = 0.55;      ///< threshold multiplier per level
  int max_level_slack = 3;  ///< per-level depth cap = level index + slack
  std::uint64_t seed = 1;
};

/// 2D corner-problem mesh series (levels 0..max_levels).
class CornerSeries2D {
 public:
  explicit CornerSeries2D(int grid_n = 79, CornerOptions options = {});

  /// Refine to the next level; returns the number of bisections.
  std::int64_t advance();

  int level() const { return level_; }
  const mesh::TriMesh& mesh() const { return mesh_; }
  mesh::TriMesh& mutable_mesh() { return mesh_; }
  const fem::ScalarField2& field() const { return field_; }

 private:
  CornerOptions options_;
  fem::ScalarField2 field_;
  mesh::TriMesh mesh_;
  int level_ = 0;
};

/// 3D corner-problem mesh series (levels 0..max_levels).
class CornerSeries3D {
 public:
  explicit CornerSeries3D(int grid_n = 12, CornerOptions options = {});

  std::int64_t advance();

  int level() const { return level_; }
  const mesh::TetMesh& mesh() const { return mesh_; }
  mesh::TetMesh& mutable_mesh() { return mesh_; }
  const fem::ScalarField3& field() const { return field_; }

 private:
  CornerOptions options_;
  fem::ScalarField3 field_;
  mesh::TetMesh mesh_;
  int level_ = 0;
};

struct TransientOptions {
  int steps = 100;
  double t_begin = -0.5;
  double t_end = 0.5;
  double refine_threshold = 0.02;
  double coarsen_threshold = 0.004;
  int max_level = 6;  ///< depth cap near the peak
  int grid_n = 40;    ///< initial mesh resolution
  std::uint64_t seed = 1;
};

/// Section 10 transient workload: call advance() once per time step.
class TransientRun {
 public:
  explicit TransientRun(TransientOptions options = {});

  struct StepInfo {
    int step = 0;
    double t = 0.0;
    std::int64_t bisections = 0;
    std::int64_t merges = 0;
  };

  /// Move to the next time step and adapt the mesh; returns what changed.
  StepInfo advance();

  bool done() const { return step_ >= options_.steps; }
  int step() const { return step_; }
  double time() const { return t_; }
  const mesh::TriMesh& mesh() const { return mesh_; }
  mesh::TriMesh& mutable_mesh() { return mesh_; }
  const TransientOptions& options() const { return options_; }
  fem::ScalarField2 current_field() const { return fem::moving_peak(t_); }

 private:
  TransientOptions options_;
  mesh::TriMesh mesh_;
  int step_ = 0;
  double t_ = 0.0;
};

/// 3D moving-peak transient (the Section 10 workload lifted to (-1,1)³ with
/// fem::moving_peak_3d). Same stepping contract as TransientRun; the default
/// grid is coarser because tet counts grow an order of magnitude faster.
class TransientRun3D {
 public:
  explicit TransientRun3D(TransientOptions options = default_options());

  /// TransientOptions resized for tets (grid_n 6, shallower depth cap).
  static TransientOptions default_options() {
    TransientOptions options;
    options.grid_n = 6;
    options.max_level = 4;
    return options;
  }

  using StepInfo = TransientRun::StepInfo;

  StepInfo advance();

  bool done() const { return step_ >= options_.steps; }
  int step() const { return step_; }
  double time() const { return t_; }
  const mesh::TetMesh& mesh() const { return mesh_; }
  mesh::TetMesh& mutable_mesh() { return mesh_; }
  const TransientOptions& options() const { return options_; }
  fem::ScalarField3 current_field() const { return fem::moving_peak_3d(t_); }

 private:
  TransientOptions options_;
  mesh::TetMesh mesh_;
  int step_ = 0;
  double t_ = 0.0;
};

}  // namespace pnr::pared
