#include "pared/workloads.hpp"

#include <cmath>

#include "mesh/generate.hpp"
#include "util/assert.hpp"

namespace pnr::pared {

// ---- CornerSeries2D ---------------------------------------------------------

CornerSeries2D::CornerSeries2D(int grid_n, CornerOptions options)
    : options_(options),
      field_(fem::corner_problem_2d()),
      mesh_(mesh::structured_tri_mesh(grid_n, grid_n, 0.25, options.seed)) {}

std::int64_t CornerSeries2D::advance() {
  ++level_;
  fem::MarkOptions mark;
  mark.refine_threshold =
      options_.tau * std::pow(options_.decay, static_cast<double>(level_ - 1));
  mark.max_level = level_ + options_.max_level_slack;
  const auto marked = fem::mark_for_refinement(mesh_, field_, mark);
  return mesh_.refine(marked);
}

// ---- CornerSeries3D ---------------------------------------------------------

CornerSeries3D::CornerSeries3D(int grid_n, CornerOptions options)
    : options_(options),
      field_(fem::corner_problem_3d()),
      mesh_(mesh::structured_tet_mesh(grid_n, grid_n, grid_n, 0.2,
                                      options.seed)) {}

std::int64_t CornerSeries3D::advance() {
  ++level_;
  fem::MarkOptions mark;
  mark.refine_threshold =
      options_.tau * std::pow(options_.decay, static_cast<double>(level_ - 1));
  mark.max_level = level_ + options_.max_level_slack;
  const auto marked = fem::mark_for_refinement(mesh_, field_, mark);
  return mesh_.refine(marked);
}

// ---- TransientRun -----------------------------------------------------------

TransientRun::TransientRun(TransientOptions options)
    : options_(options),
      mesh_(mesh::structured_tri_mesh(options.grid_n, options.grid_n, 0.25,
                                      options.seed)),
      t_(options.t_begin) {
  PNR_REQUIRE(options.steps >= 1);
  // Pre-adapt to the initial peak position so step 0 starts converged.
  const auto field = fem::moving_peak(t_);
  fem::MarkOptions mark;
  mark.refine_threshold = options_.refine_threshold;
  mark.max_level = options_.max_level;
  for (int round = 0; round < options_.max_level + 2; ++round) {
    const auto marked = fem::mark_for_refinement(mesh_, field, mark);
    if (marked.empty()) break;
    mesh_.refine(marked);
  }
}

TransientRun::StepInfo TransientRun::advance() {
  PNR_REQUIRE(!done());
  StepInfo info;
  ++step_;
  t_ = options_.t_begin + (options_.t_end - options_.t_begin) *
                              static_cast<double>(step_) /
                              static_cast<double>(options_.steps);
  info.step = step_;
  info.t = t_;

  const auto field = fem::moving_peak(t_);
  fem::MarkOptions mark;
  mark.refine_threshold = options_.refine_threshold;
  mark.coarsen_threshold = options_.coarsen_threshold;
  mark.max_level = options_.max_level;

  // Coarsen the wake, then refine the front until the indicator settles
  // (bounded number of rounds: the peak moves a fraction of its width per
  // step).
  for (int round = 0; round < 4; ++round) {
    const auto merged = mesh_.coarsen(fem::mark_for_coarsening(mesh_, field, mark));
    info.merges += merged;
    if (merged == 0) break;
  }
  for (int round = 0; round < options_.max_level + 2; ++round) {
    const auto marked = fem::mark_for_refinement(mesh_, field, mark);
    if (marked.empty()) break;
    info.bisections += mesh_.refine(marked);
  }
  return info;
}

// ---- TransientRun3D ---------------------------------------------------------

TransientRun3D::TransientRun3D(TransientOptions options)
    : options_(options),
      mesh_(mesh::structured_tet_mesh(options.grid_n, options.grid_n,
                                      options.grid_n, 0.2, options.seed)),
      t_(options.t_begin) {
  PNR_REQUIRE(options.steps >= 1);
  const auto field = fem::moving_peak_3d(t_);
  fem::MarkOptions mark;
  mark.refine_threshold = options_.refine_threshold;
  mark.max_level = options_.max_level;
  for (int round = 0; round < options_.max_level + 2; ++round) {
    const auto marked = fem::mark_for_refinement(mesh_, field, mark);
    if (marked.empty()) break;
    mesh_.refine(marked);
  }
}

TransientRun3D::StepInfo TransientRun3D::advance() {
  PNR_REQUIRE(!done());
  StepInfo info;
  ++step_;
  t_ = options_.t_begin + (options_.t_end - options_.t_begin) *
                              static_cast<double>(step_) /
                              static_cast<double>(options_.steps);
  info.step = step_;
  info.t = t_;

  const auto field = fem::moving_peak_3d(t_);
  fem::MarkOptions mark;
  mark.refine_threshold = options_.refine_threshold;
  mark.coarsen_threshold = options_.coarsen_threshold;
  mark.max_level = options_.max_level;

  for (int round = 0; round < 4; ++round) {
    const auto merged =
        mesh_.coarsen(fem::mark_for_coarsening(mesh_, field, mark));
    info.merges += merged;
    if (merged == 0) break;
  }
  for (int round = 0; round < options_.max_level + 2; ++round) {
    const auto marked = fem::mark_for_refinement(mesh_, field, mark);
    if (marked.empty()) break;
    info.bisections += mesh_.refine(marked);
  }
  return info;
}

}  // namespace pnr::pared
