#include "engine/rib.hpp"

#include <algorithm>
#include <array>
#include <cstddef>
#include <numeric>
#include <utility>
#include <vector>

#include "exec/pool.hpp"
#include "partition/dense_eig.hpp"
#include "partition/remap.hpp"
#include "util/assert.hpp"
#include "util/prof.hpp"

namespace pnr::engine {

namespace {

// One pending subdomain: a set of global vertex ids to be split into
// `parts` subsets labelled [base, base + parts).
struct Task {
  std::vector<graph::VertexId> ids;
  part::PartId parts = 1;
  part::PartId base = 0;
};

// Serial weighted inertial bisection of one task over *global* coords and
// weights (mirrors part::inertial_bisect, including the (proj, id)
// tie-break and the grow-to-target loop). Returns the (left, right) id
// lists in curve order and clamps `pl` so each side can host its share.
std::pair<Task, Task> bisect(const graph::Graph& g,
                             std::span<const double> coords, int dim,
                             const Task& task) {
  const auto& ids = task.ids;
  const std::size_t n = ids.size();
  PNR_ASSERT(n >= 2 && task.parts >= 2);

  graph::Weight total = 0;
  std::array<double, 3> centroid{0.0, 0.0, 0.0};
  double total_w = 0.0;
  for (const graph::VertexId v : ids) {
    const graph::Weight wi = g.vertex_weight(v);
    total += wi;
    const auto w = static_cast<double>(wi);
    total_w += w;
    for (int d = 0; d < dim; ++d)
      centroid[static_cast<std::size_t>(d)] +=
          w * coords[static_cast<std::size_t>(v) *
                         static_cast<std::size_t>(dim) +
                     static_cast<std::size_t>(d)];
  }
  for (double& c : centroid) c /= total_w > 0.0 ? total_w : 1.0;

  std::vector<double> tensor(static_cast<std::size_t>(dim) * dim, 0.0);
  for (const graph::VertexId v : ids) {
    const auto w = static_cast<double>(g.vertex_weight(v));
    for (int r = 0; r < dim; ++r)
      for (int c = 0; c < dim; ++c) {
        const double dr = coords[static_cast<std::size_t>(v) *
                                     static_cast<std::size_t>(dim) +
                                 static_cast<std::size_t>(r)] -
                          centroid[static_cast<std::size_t>(r)];
        const double dc = coords[static_cast<std::size_t>(v) *
                                     static_cast<std::size_t>(dim) +
                                 static_cast<std::size_t>(c)] -
                          centroid[static_cast<std::size_t>(c)];
        tensor[static_cast<std::size_t>(r) * dim + c] += w * dr * dc;
      }
  }
  std::vector<double> evals, evecs;
  part::jacobi_eigensymm(tensor, dim, evals, evecs);
  const double* axis = evecs.data() + static_cast<std::size_t>(dim - 1) * dim;

  std::vector<double> proj(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = 0.0;
    for (int d = 0; d < dim; ++d)
      s += axis[d] * coords[static_cast<std::size_t>(ids[i]) *
                                static_cast<std::size_t>(dim) +
                            static_cast<std::size_t>(d)];
    proj[i] = s;
  }
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (proj[a] != proj[b]) return proj[a] < proj[b];
    return ids[a] < ids[b];
  });

  part::PartId pl = (task.parts + 1) / 2;
  const auto target0 = static_cast<graph::Weight>(
      static_cast<double>(total) * pl / task.parts + 0.5);

  std::size_t cut = 0;  // first index of the right side in curve order
  graph::Weight grown = 0;
  while (cut < n - 1 && grown < target0) {
    grown += g.vertex_weight(ids[order[cut]]);
    ++cut;
  }
  if (cut == 0) cut = 1;  // never leave a side empty

  Task left, right;
  left.ids.reserve(cut);
  right.ids.reserve(n - cut);
  for (std::size_t i = 0; i < cut; ++i) left.ids.push_back(ids[order[i]]);
  for (std::size_t i = cut; i < n; ++i) right.ids.push_back(ids[order[i]]);
  // Keep each side's part count within its vertex count (extreme weights).
  pl = std::min<part::PartId>(pl, static_cast<part::PartId>(left.ids.size()));
  pl = std::max<part::PartId>(
      pl, task.parts - static_cast<part::PartId>(right.ids.size()));
  left.parts = pl;
  left.base = task.base;
  right.parts = task.parts - pl;
  right.base = static_cast<part::PartId>(task.base + pl);
  return {std::move(left), std::move(right)};
}

}  // namespace

part::Partition RibRepartitioner::run(const Input& in,
                                      core::RepartitionStats* stats) const {
  PNR_PROF_SPAN("engine.rib");
  prof::count("engine.runs");
  const graph::Graph& g = *in.graph;
  const auto n = static_cast<std::size_t>(g.num_vertices());
  PNR_REQUIRE(in.dim == 2 || in.dim == 3);
  PNR_REQUIRE(in.coords.size() == n * static_cast<std::size_t>(in.dim));
  PNR_REQUIRE(in.parts >= 1 &&
              g.num_vertices() >= static_cast<graph::VertexId>(in.parts));

  std::vector<part::PartId> assign(n, 0);
  int levels = 0;

  Task root;
  root.ids.resize(n);
  std::iota(root.ids.begin(), root.ids.end(), 0);
  root.parts = in.parts;
  std::vector<Task> frontier;
  frontier.push_back(std::move(root));

  while (true) {
    // Retire finished subdomains; collect the ones still needing splits.
    std::vector<Task> open;
    for (Task& t : frontier) {
      if (t.parts <= 1) {
        for (const graph::VertexId v : t.ids)
          assign[static_cast<std::size_t>(v)] = t.base;
      } else {
        open.push_back(std::move(t));
      }
    }
    if (open.empty()) break;
    ++levels;

    // Level-synchronous fan-out: one grain-1 task per open subdomain, each
    // writing its (left, right) pair into a disjoint slot — deterministic
    // for any pool size.
    std::vector<std::pair<Task, Task>> split(open.size());
    exec::default_pool().parallel_for(
        static_cast<std::int64_t>(open.size()),
        [&](std::int64_t b, std::int64_t e) {
          for (std::int64_t i = b; i < e; ++i)
            split[static_cast<std::size_t>(i)] =
                bisect(g, in.coords, in.dim, open[static_cast<std::size_t>(i)]);
        },
        exec::Chunking{1, 0});
    prof::count("engine.rib.bisections",
                static_cast<std::int64_t>(open.size()));

    frontier.clear();
    for (auto& [left, right] : split) {
      frontier.push_back(std::move(left));
      frontier.push_back(std::move(right));
    }
  }

  part::Partition pi(in.parts, std::move(assign));
  if (in.previous != nullptr) {
    PNR_PROF_SPAN("engine.remap");
    pi = part::remap_to_minimize_migration(g, *in.previous, pi);
  }

  if (stats != nullptr) {
    *stats = {};
    if (in.previous != nullptr) {
      stats->cut_before = part::cut_size(g, *in.previous);
      stats->imbalance_before = part::imbalance(g, *in.previous);
      stats->migrate = part::migration_cost(g, *in.previous, pi);
    }
    stats->cut_after = part::cut_size(g, pi);
    stats->imbalance_after = part::imbalance(g, pi);
    stats->levels = levels;
  }
  return pi;
}

}  // namespace pnr::engine
