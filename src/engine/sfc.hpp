#pragma once
// Space-filling-curve repartitioner (Burstedde & Holke, arXiv:1611.02929):
// order the coarse elements along a Morton or Hilbert curve over their
// quantized centroids, split the curve into p contiguous weight-balanced
// segments, and relabel against Π^{t-1} with the Hungarian remap so stable
// curves migrate almost nothing. Planning is O(n log n) — one key per
// element plus a sort — independent of the adapted mesh size.

#include <cstdint>
#include <span>
#include <vector>

#include "engine/engine.hpp"

namespace pnr::engine {

/// Curve keys for n points (`coords` is n*dim, dim 2 or 3), quantized to a
/// per-axis grid over the bounding box. Hilbert keys use Skilling's
/// transpose algorithm; Morton keys interleave the raw axis bits. Exposed
/// for tests; deterministic and thread-count independent.
std::vector<std::uint64_t> sfc_keys(std::span<const double> coords,
                                    std::size_t n, int dim, bool hilbert);

/// Split the curve order (ids sorted by key, ties by id) into p contiguous
/// segments with near-equal vertex-weight sums; segment k closes once its
/// cumulative weight reaches (k+1)/p of the total, while always leaving one
/// vertex for every remaining segment. When `previous` is itself p
/// contiguous segments along the same curve, a previous boundary whose
/// cumulative weight is within `tol`·(total/p) of the ideal quota is kept
/// in place (boundary hysteresis), so sub-tolerance weight jitter does not
/// migrate elements. Exposed for tests.
part::Partition sfc_split(const graph::Graph& g,
                          const std::vector<std::uint64_t>& keys,
                          part::PartId parts,
                          const part::Partition* previous = nullptr,
                          double tol = 0.0);

class SfcRepartitioner final : public Repartitioner {
 public:
  explicit SfcRepartitioner(bool hilbert) : hilbert_(hilbert) {}
  Kind kind() const override {
    return hilbert_ ? Kind::kSfcHilbert : Kind::kSfcMorton;
  }
  bool needs_coords() const override { return true; }
  part::Partition run(const Input& in,
                      core::RepartitionStats* stats) const override;

 private:
  bool hilbert_;
};

}  // namespace pnr::engine
