#include "engine/engine.hpp"

#include "engine/rib.hpp"
#include "engine/sfc.hpp"
#include "util/assert.hpp"
#include "util/prof.hpp"

namespace pnr::engine {

namespace {

// The paper's migration-aware multilevel KL, wrapped unchanged: the
// backend builds a core::Pnr per call (the object is a thin options
// holder) and forwards to initial_partition / repartition, so results are
// bit-identical to driving core::Pnr directly.
class MlklRepartitioner final : public Repartitioner {
 public:
  Kind kind() const override { return Kind::kMlkl; }
  bool needs_coords() const override { return false; }
  part::Partition run(const Input& in,
                      core::RepartitionStats* stats) const override {
    PNR_PROF_SPAN("engine.mlkl");
    prof::count("engine.runs");
    PNR_REQUIRE(in.rng != nullptr);
    const core::Pnr pnr(in.parts, in.options);
    if (in.previous == nullptr) {
      part::Partition pi = pnr.initial_partition(*in.graph, *in.rng);
      if (stats != nullptr) {
        *stats = {};
        stats->cut_after = part::cut_size(*in.graph, pi);
        stats->imbalance_after = part::imbalance(*in.graph, pi);
      }
      return pi;
    }
    return pnr.repartition(*in.graph, *in.previous, *in.rng, stats, in.cache);
  }
};

}  // namespace

const char* kind_name(Kind k) {
  switch (k) {
    case Kind::kMlkl: return "mlkl";
    case Kind::kSfcMorton: return "sfc-morton";
    case Kind::kSfcHilbert: return "sfc-hilbert";
    case Kind::kRib: return "rib";
  }
  return "?";
}

bool parse_kind(std::string_view token, Kind& out) {
  for (int i = 0; i < kNumKinds; ++i) {
    const auto k = static_cast<Kind>(i);
    if (token == kind_name(k)) {
      out = k;
      return true;
    }
  }
  return false;
}

const Repartitioner& repartitioner(Kind k) {
  static const MlklRepartitioner mlkl;
  static const SfcRepartitioner sfc_morton{/*hilbert=*/false};
  static const SfcRepartitioner sfc_hilbert{/*hilbert=*/true};
  static const RibRepartitioner rib;
  switch (k) {
    case Kind::kMlkl: return mlkl;
    case Kind::kSfcMorton: return sfc_morton;
    case Kind::kSfcHilbert: return sfc_hilbert;
    case Kind::kRib: return rib;
  }
  PNR_REQUIRE(false && "unregistered engine kind");
  return mlkl;
}

}  // namespace pnr::engine
