#pragma once
// Parallel recursive inertial bisection (Parma-style RIB): repeatedly split
// each subdomain by the principal axis of its weighted inertia tensor until
// p parts remain, then relabel against Π^{t-1} with the Hungarian remap.
// Parallelism is level-synchronous — every bisection of one recursion level
// is an independent grain-1 task on pnr::exec, and each task's math runs
// serially on global coordinates, so the assignment is bitwise identical
// for any thread count (the subsystem's determinism contract). Unlike
// part::inertial_partition, no induced subgraphs are built: a bisection
// needs only vertex weights and centroids, so tasks carry plain global
// vertex-id lists.

#include "engine/engine.hpp"

namespace pnr::engine {

class RibRepartitioner final : public Repartitioner {
 public:
  Kind kind() const override { return Kind::kRib; }
  bool needs_coords() const override { return true; }
  part::Partition run(const Input& in,
                      core::RepartitionStats* stats) const override;
};

}  // namespace pnr::engine
