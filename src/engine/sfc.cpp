#include "engine/sfc.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <numeric>

#include "exec/pool.hpp"
#include "partition/remap.hpp"
#include "util/assert.hpp"
#include "util/prof.hpp"

namespace pnr::engine {

namespace {

// Bits per axis: 2·31 = 62 (2-D) and 3·21 = 63 (3-D) key bits, both inside
// a u64 with room to spare.
int bits_per_axis(int dim) { return dim == 2 ? 31 : 21; }

// Quantize one point to the per-axis grid. `lo`/`inv_extent` describe the
// bounding box; a degenerate axis (zero extent) maps to cell 0.
std::array<std::uint32_t, 3> quantize(std::span<const double> coords,
                                      std::size_t v, int dim,
                                      const std::array<double, 3>& lo,
                                      const std::array<double, 3>& inv_extent,
                                      std::uint32_t cells) {
  std::array<std::uint32_t, 3> q{0, 0, 0};
  for (int d = 0; d < dim; ++d) {
    const double u =
        (coords[v * static_cast<std::size_t>(dim) +
                static_cast<std::size_t>(d)] -
         lo[static_cast<std::size_t>(d)]) *
        inv_extent[static_cast<std::size_t>(d)];
    const double scaled = u * static_cast<double>(cells);
    const auto cell = scaled <= 0.0 ? std::uint32_t{0}
                                    : static_cast<std::uint32_t>(scaled);
    q[static_cast<std::size_t>(d)] = std::min(cell, cells - 1);
  }
  return q;
}

std::uint64_t morton_key(const std::array<std::uint32_t, 3>& q, int dim,
                         int bits) {
  std::uint64_t key = 0;
  for (int j = bits - 1; j >= 0; --j)
    for (int d = 0; d < dim; ++d)
      key = (key << 1) |
            ((q[static_cast<std::size_t>(d)] >> j) & std::uint32_t{1});
  return key;
}

// Skilling's AxesToTranspose (from "Programming the Hilbert curve", AIP
// 2004): turn axis coordinates into the transpose-format Hilbert index in
// place, then interleave the transpose bits into a single key.
std::uint64_t hilbert_key(std::array<std::uint32_t, 3> x, int dim, int bits) {
  const std::uint32_t m = std::uint32_t{1} << (bits - 1);
  const auto n = static_cast<std::size_t>(dim);
  // Inverse undo of the excess work.
  for (std::uint32_t q = m; q > 1; q >>= 1) {
    const std::uint32_t p = q - 1;
    for (std::size_t i = 0; i < n; ++i) {
      if (x[i] & q) {
        x[0] ^= p;
      } else {
        const std::uint32_t t = (x[0] ^ x[i]) & p;
        x[0] ^= t;
        x[i] ^= t;
      }
    }
  }
  // Gray encode.
  for (std::size_t i = 1; i < n; ++i) x[i] ^= x[i - 1];
  std::uint32_t t = 0;
  for (std::uint32_t q = m; q > 1; q >>= 1)
    if (x[n - 1] & q) t ^= q - 1;
  for (std::size_t i = 0; i < n; ++i) x[i] ^= t;
  // Transpose to a single index: bit j of axis i lands at dim*j + (dim-1-i).
  std::uint64_t key = 0;
  for (int j = bits - 1; j >= 0; --j)
    for (std::size_t i = 0; i < n; ++i)
      key = (key << 1) | ((x[i] >> j) & std::uint32_t{1});
  return key;
}

}  // namespace

std::vector<std::uint64_t> sfc_keys(std::span<const double> coords,
                                    std::size_t n, int dim, bool hilbert) {
  PNR_REQUIRE(dim == 2 || dim == 3);
  PNR_REQUIRE(coords.size() == n * static_cast<std::size_t>(dim));
  const int bits = bits_per_axis(dim);
  const std::uint32_t cells = std::uint32_t{1} << bits;

  std::array<double, 3> lo{0.0, 0.0, 0.0};
  std::array<double, 3> hi{0.0, 0.0, 0.0};
  for (int d = 0; d < dim; ++d) {
    lo[static_cast<std::size_t>(d)] = std::numeric_limits<double>::infinity();
    hi[static_cast<std::size_t>(d)] = -std::numeric_limits<double>::infinity();
  }
  for (std::size_t v = 0; v < n; ++v)
    for (int d = 0; d < dim; ++d) {
      const double c = coords[v * static_cast<std::size_t>(dim) +
                              static_cast<std::size_t>(d)];
      lo[static_cast<std::size_t>(d)] =
          std::min(lo[static_cast<std::size_t>(d)], c);
      hi[static_cast<std::size_t>(d)] =
          std::max(hi[static_cast<std::size_t>(d)], c);
    }
  std::array<double, 3> inv_extent{0.0, 0.0, 0.0};
  for (int d = 0; d < dim; ++d) {
    const double extent = hi[static_cast<std::size_t>(d)] -
                          lo[static_cast<std::size_t>(d)];
    inv_extent[static_cast<std::size_t>(d)] =
        extent > 0.0 ? 1.0 / extent : 0.0;
  }

  std::vector<std::uint64_t> keys(n);
  // Disjoint writes: deterministic for any pool size.
  exec::default_pool().parallel_for(
      static_cast<std::int64_t>(n),
      [&](std::int64_t b, std::int64_t e) {
        for (std::int64_t i = b; i < e; ++i) {
          const auto v = static_cast<std::size_t>(i);
          const auto q = quantize(coords, v, dim, lo, inv_extent, cells);
          keys[v] = hilbert ? hilbert_key(q, dim, bits)
                            : morton_key(q, dim, bits);
        }
      });
  prof::count("engine.sfc.keys", static_cast<std::int64_t>(n));
  return keys;
}

part::Partition sfc_split(const graph::Graph& g,
                          const std::vector<std::uint64_t>& keys,
                          part::PartId parts,
                          const part::Partition* previous, double tol) {
  const auto n = static_cast<std::size_t>(g.num_vertices());
  PNR_REQUIRE(parts >= 1 && keys.size() == n);

  std::vector<graph::VertexId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](graph::VertexId a, graph::VertexId b) {
              const std::uint64_t ka = keys[static_cast<std::size_t>(a)];
              const std::uint64_t kb = keys[static_cast<std::size_t>(b)];
              if (ka != kb) return ka < kb;
              return a < b;  // stable under duplicate keys
            });

  // Prefix weights in curve order: W[pos] = weight of the first pos
  // vertices, so segment boundaries are positions in [1, n).
  std::vector<graph::Weight> prefix(n + 1, 0);
  for (std::size_t pos = 0; pos < n; ++pos)
    prefix[pos + 1] = prefix[pos] + g.vertex_weight(order[pos]);
  const graph::Weight total = prefix[n];

  // Boundary hysteresis (Burstedde & Holke's stabilized splits): the coarse
  // forest and therefore the curve order are fixed across adaptations, so
  // when Π^{t-1} is itself curve-contiguous its boundaries are candidate
  // positions. Reusing a previous boundary whose cumulative weight is
  // within `tol`·(total/p) of the ideal quota keeps sub-tolerance weight
  // jitter from shifting every segment — and migrating their elements —
  // each round.
  std::vector<std::size_t> prev_end;
  if (previous != nullptr && previous->num_parts == parts && tol > 0.0 &&
      previous->assign.size() == n) {
    prev_end.reserve(static_cast<std::size_t>(parts));
    for (std::size_t pos = 1; pos < n; ++pos)
      if (previous->assign[static_cast<std::size_t>(order[pos])] !=
          previous->assign[static_cast<std::size_t>(order[pos - 1])])
        prev_end.push_back(pos);
    // Usable only when the previous partition is exactly p contiguous
    // segments along this curve (engine switches mid-session are not).
    if (prev_end.size() != static_cast<std::size_t>(parts) - 1)
      prev_end.clear();
  }
  const double slack = tol * (static_cast<double>(total) /
                              static_cast<double>(parts));

  std::vector<part::PartId> assign(n, 0);
  std::size_t lo = 0;  // end of the previous segment
  for (part::PartId k = 0; k + 1 < parts; ++k) {
    // Admissible boundary range: at least one vertex in this segment, at
    // least one left for every remaining segment.
    const std::size_t min_pos = lo + 1;
    const std::size_t max_pos = n - (static_cast<std::size_t>(parts) - 1 -
                                     static_cast<std::size_t>(k));
    // Ideal greedy close: the first position whose cumulative weight
    // reaches the (k+1)/p quota.
    const auto quota = static_cast<double>(total) *
                       (static_cast<double>(k) + 1.0) /
                       static_cast<double>(parts);
    std::size_t pos = min_pos;
    while (pos < max_pos && static_cast<__int128>(prefix[pos]) * parts <
                                static_cast<__int128>(k + 1) * total)
      ++pos;
    if (!prev_end.empty()) {
      const std::size_t cand = prev_end[static_cast<std::size_t>(k)];
      if (cand >= min_pos && cand <= max_pos &&
          std::abs(static_cast<double>(prefix[cand]) - quota) <= slack)
        pos = cand;
    }
    for (std::size_t i = lo; i < pos; ++i)
      assign[static_cast<std::size_t>(order[i])] = k;
    lo = pos;
  }
  for (std::size_t i = lo; i < n; ++i)
    assign[static_cast<std::size_t>(order[i])] =
        static_cast<part::PartId>(parts - 1);
  return part::Partition(parts, std::move(assign));
}

part::Partition SfcRepartitioner::run(const Input& in,
                                      core::RepartitionStats* stats) const {
  PNR_PROF_SPAN("engine.sfc");
  prof::count("engine.runs");
  const graph::Graph& g = *in.graph;
  const auto n = static_cast<std::size_t>(g.num_vertices());
  PNR_REQUIRE(in.dim == 2 || in.dim == 3);
  PNR_REQUIRE(in.coords.size() == n * static_cast<std::size_t>(in.dim));

  const auto keys = sfc_keys(in.coords, n, in.dim, hilbert_);
  part::Partition pi = sfc_split(g, keys, in.parts, in.previous,
                                 in.options.imbalance_tol);
  if (in.previous != nullptr) {
    PNR_PROF_SPAN("engine.remap");
    pi = part::remap_to_minimize_migration(g, *in.previous, pi);
  }

  if (stats != nullptr) {
    *stats = {};
    if (in.previous != nullptr) {
      stats->cut_before = part::cut_size(g, *in.previous);
      stats->imbalance_before = part::imbalance(g, *in.previous);
      stats->migrate = part::migration_cost(g, *in.previous, pi);
    }
    stats->cut_after = part::cut_size(g, pi);
    stats->imbalance_after = part::imbalance(g, pi);
    stats->levels = 0;  // no multilevel hierarchy
  }
  return pi;
}

}  // namespace pnr::engine
