#pragma once
// pnr::engine — pluggable repartitioner backends behind one interface.
//
// The paper's migration-aware MLKL (core::Pnr) is one way to turn the
// coarse dual graph + refinement-forest leaf weights + Π^{t-1} into Π̂^t;
// Burstedde & Holke (arXiv:1611.02929) show space-filling-curve orders over
// the coarse-element forest give near-free repartitions on tree-based AMR,
// and Parma-style recursive inertial bisection covers the geometric middle
// ground. Each backend is a stateless `Repartitioner` singleton selected by
// `Kind`; every engine honours the pnr::exec bitwise-determinism contract
// (same assignment for any thread count) and reports the same
// core::RepartitionStats, so Session, the service, and bench_engines can
// swap engines per request without touching the surrounding pipeline.

#include <cstdint>
#include <span>
#include <string_view>

#include "core/pnr.hpp"
#include "graph/csr.hpp"
#include "partition/partition.hpp"
#include "util/rng.hpp"

namespace pnr::engine {

/// Registered backends. Values are the svc wire encoding (u8) — append
/// only, never renumber. 255 on the wire means "server default".
enum class Kind : std::uint8_t {
  kMlkl = 0,        ///< paper's migration-aware multilevel KL (core::Pnr)
  kSfcMorton = 1,   ///< Morton-order curve split, remapped against Π^{t-1}
  kSfcHilbert = 2,  ///< Hilbert-order curve split, remapped against Π^{t-1}
  kRib = 3,         ///< parallel recursive inertial bisection on pnr::exec
};

inline constexpr int kNumKinds = 4;

/// Canonical token: "mlkl", "sfc-morton", "sfc-hilbert", "rib".
const char* kind_name(Kind k);

/// Parse a canonical token (as printed by kind_name). Returns false and
/// leaves `out` untouched on an unknown token.
bool parse_kind(std::string_view token, Kind& out);

/// True iff `v` is the wire encoding of a registered Kind.
inline bool valid_kind(std::uint8_t v) {
  return v < static_cast<std::uint8_t>(kNumKinds);
}

/// Everything a backend may consume for one repartition. The graph carries
/// the leaf-count vertex weights; `coords` (when present) are the n·dim
/// coarse-element centroids in vertex order. `previous` is Π^{t-1} carried
/// to the updated weights, or nullptr for the very first partition.
struct Input {
  const graph::Graph* graph = nullptr;
  std::span<const double> coords;  ///< n*dim, or empty when unavailable
  int dim = 0;                     ///< 0 (no coords), 2, or 3
  const part::Partition* previous = nullptr;
  part::PartId parts = 0;
  core::PnrOptions options;          ///< α/β and the MLKL knobs
  core::HierarchyCache* cache = nullptr;  ///< MLKL only; may be nullptr
  util::Rng* rng = nullptr;          ///< MLKL only; may be nullptr
};

/// One backend. Implementations are stateless and const — safe to share
/// across sessions and threads.
class Repartitioner {
 public:
  virtual ~Repartitioner() = default;
  virtual Kind kind() const = 0;
  /// True when the backend needs Input::coords (geometric engines).
  virtual bool needs_coords() const = 0;
  /// Compute Π̂^t. Fills `stats` (cut/migration/imbalance before and after)
  /// when non-null. Deterministic: a pure function of Input for any exec
  /// thread count.
  virtual part::Partition run(const Input& in,
                              core::RepartitionStats* stats) const = 0;
};

/// The registered singleton for `k`. Never returns null.
const Repartitioner& repartitioner(Kind k);

}  // namespace pnr::engine
