#include "core/pnr.hpp"

#include <algorithm>

#include "check/check.hpp"
#include "partition/mlkl.hpp"
#include "partition/rebalance.hpp"
#include "partition/refine.hpp"
#include "util/assert.hpp"
#include "util/prof.hpp"

namespace pnr::core {

Pnr::Pnr(part::PartId p, PnrOptions options) : p_(p), options_(options) {
  PNR_REQUIRE(p >= 1);
  PNR_REQUIRE(options.alpha >= 0.0 && options.beta >= 0.0);
}

part::Partition Pnr::initial_partition(const graph::Graph& g,
                                       util::Rng& rng) const {
  PNR_PROF_SPAN("pnr.initial_partition");
  part::PartitionerOptions popt;
  popt.method = options_.initial_method;
  popt.imbalance_tol = options_.initial_imbalance_tol;
  part::Partition pi = part::make_partition(g, p_, rng, popt);

  // Polish toward the paper's ε < 0.01 (no migration term: there is no
  // previous assignment yet).
  part::RefineOptions ropt;
  ropt.max_passes = options_.max_passes;
  if (options_.hard_balance) {
    part::RebalanceOptions bopt;
    bopt.tol = options_.imbalance_tol / 2.0;
    part::rebalance_greedy(g, pi, bopt);
    ropt.hard_balance = true;
    ropt.imbalance_tol = options_.imbalance_tol;
    part::refine_partition(g, pi, ropt);
    bopt.tol = options_.imbalance_tol;
    part::rebalance_greedy(g, pi, bopt);
  } else {
    ropt.hard_balance = false;
    ropt.beta = options_.beta;
    part::refine_partition(g, pi, ropt);
  }
  if constexpr (check::kLevel >= 2)
    check::enforce(check::check_partition(g, pi), "pnr.initial_partition");
  return pi;
}

part::Partition Pnr::repartition(const graph::Graph& g,
                                 const part::Partition& current,
                                 util::Rng& rng,
                                 RepartitionStats* stats) const {
  PNR_PROF_SPAN("pnr.repartition");
  PNR_REQUIRE(current.valid_for(g));
  PNR_REQUIRE(current.num_parts == p_);

  if (stats) {
    stats->cut_before = part::cut_size(g, current);
    stats->imbalance_before = part::imbalance(g, current);
  }

  // Contraction restricted to same-subset pairs: the incoming assignment is
  // constant on every contracted vertex, so it survives to the coarsest
  // level. The constraint must be re-projected at every level, so we build
  // the hierarchy by hand. homes[k] is the incoming assignment expressed on
  // level k's graph (level 0 = g).
  graph::CoarsenOptions copt;
  copt.random_matching = options_.random_matching;
  copt.max_vertex_weight =
      std::max<graph::Weight>(1, g.total_vertex_weight() / (4 * p_));

  std::vector<graph::CoarseLevel> levels;
  std::vector<std::vector<part::PartId>> homes{current.assign};
  {
    PNR_PROF_SPAN("pnr.contract");
    // Never contract below a few vertices per subset, or the coarsest
    // level could not even represent the partition.
    const graph::VertexId floor_size =
        std::max<graph::VertexId>(options_.coarsest_size, 4 * p_);
    const graph::Graph* cur = &g;
    while (cur->num_vertices() > floor_size) {
      if (!options_.repartition_coarsest) copt.partition = &homes.back();
      graph::CoarseLevel level = graph::coarsen_once(*cur, rng, copt);
      const auto before = cur->num_vertices();
      const auto after = level.graph.num_vertices();
      if (after >= before - before / 10) break;  // contraction stalled
      std::vector<part::PartId> home(
          static_cast<std::size_t>(after), 0);
      for (std::size_t v = 0; v < level.fine_to_coarse.size(); ++v)
        home[static_cast<std::size_t>(level.fine_to_coarse[v])] =
            homes.back()[v];
      homes.push_back(std::move(home));
      levels.push_back(std::move(level));
      cur = &levels.back().graph;
    }
  }
  if (stats) stats->levels = static_cast<int>(levels.size());
  prof::count("pnr.levels", static_cast<std::int64_t>(levels.size()));

  // Start from the projected current assignment (modification (a)) or, in
  // the ablation, partition the coarsest graph from scratch.
  std::vector<part::PartId> assign;
  const graph::Graph& coarsest = levels.empty() ? g : levels.back().graph;
  if (options_.repartition_coarsest) {
    part::MlklOptions mo;
    assign = part::multilevel_kl(coarsest, p_, rng, mo).assign;
  } else {
    assign = homes.back();
  }

  part::RefineOptions ropt;
  ropt.alpha = options_.alpha;
  ropt.max_passes = options_.max_passes;
  if (options_.hard_balance) {
    // Two-phase refinement (see PnrOptions::hard_balance): an explicit
    // rebalance pass restores feasibility — its move count is close to the
    // Section 8 lower estimate, because the excess weight must move — and
    // then the migration-aware KL improves the cut under a hard balance cap
    // with the β term off (its quadratic lock would otherwise freeze every
    // heavy vertex and let the cut decay level after level).
    ropt.hard_balance = true;
    ropt.imbalance_tol = options_.imbalance_tol;
    ropt.beta = 0.0;
  } else {
    // Literal Eq. 1 objective (kept for the ablation bench).
    ropt.hard_balance = false;
    ropt.beta = options_.beta;
  }

  // Refine at the coarsest level, then uncoarsen and refine at each finer
  // level — the migration-aware KL of Section 9 at every step.
  PNR_PROF_SPAN("pnr.uncoarsen_refine");
  for (std::size_t k = levels.size() + 1; k-- > 0;) {
    const graph::Graph& level_graph = k == 0 ? g : levels[k - 1].graph;
    if (options_.hard_balance) {
      part::RebalanceOptions bopt;
      bopt.tol = options_.imbalance_tol / 2.0;
      bopt.alpha = options_.alpha;
      bopt.home = &homes[k];
      part::Partition pi(p_, std::move(assign));
      part::rebalance_greedy(level_graph, pi, bopt);
      assign = std::move(pi.assign);
    }
    ropt.home = &homes[k];
    part::Partition pi(p_, std::move(assign));
    part::refine_partition(level_graph, pi, ropt);
    if (k == 0 && options_.hard_balance) {
      // KL's per-move slack can leave a heavy-vertex overshoot; drain it,
      // let KL polish the cut from the feasible point, and drain once more
      // so the reported ε ≤ tol.
      part::RebalanceOptions bopt;
      bopt.tol = options_.imbalance_tol;
      bopt.alpha = options_.alpha;
      bopt.home = &homes[0];
      part::rebalance_greedy(level_graph, pi, bopt);
      part::refine_partition(level_graph, pi, ropt);
      part::rebalance_greedy(level_graph, pi, bopt);
    }
    assign = std::move(pi.assign);
    if (k > 0) assign = graph::project_partition(levels[k - 1].fine_to_coarse,
                                                 assign);
  }

  part::Partition result(p_, std::move(assign));
  if constexpr (check::kLevel >= 2)
    check::enforce(check::check_partition(g, result), "pnr.repartition");
  if (stats) {
    stats->cut_after = part::cut_size(g, result);
    stats->migrate = part::migration_cost(g, current, result);
    stats->imbalance_after = part::imbalance(g, result);
  }
  return result;
}

}  // namespace pnr::core
