#include "core/pnr.hpp"

#include <algorithm>

#include "check/check.hpp"
#include "core/hierarchy_cache.hpp"
#include "partition/mlkl.hpp"
#include "partition/rebalance.hpp"
#include "partition/refine.hpp"
#include "util/assert.hpp"
#include "util/prof.hpp"

namespace pnr::core {

Pnr::Pnr(part::PartId p, PnrOptions options) : p_(p), options_(options) {
  PNR_REQUIRE(p >= 1);
  PNR_REQUIRE(options.alpha >= 0.0 && options.beta >= 0.0);
}

part::Partition Pnr::initial_partition(const graph::Graph& g,
                                       util::Rng& rng) const {
  PNR_PROF_SPAN("pnr.initial_partition");
  part::PartitionerOptions popt;
  popt.method = options_.initial_method;
  popt.imbalance_tol = options_.initial_imbalance_tol;
  part::Partition pi = part::make_partition(g, p_, rng, popt);

  // Polish toward the paper's ε < 0.01 (no migration term: there is no
  // previous assignment yet).
  part::RefineOptions ropt;
  ropt.max_passes = options_.max_passes;
  if (options_.hard_balance) {
    part::SharedConnState chain;
    part::RebalanceOptions bopt;
    bopt.tol = options_.imbalance_tol / 2.0;
    part::rebalance_greedy(g, pi, bopt, &chain);
    ropt.hard_balance = true;
    ropt.imbalance_tol = options_.imbalance_tol;
    part::refine_partition(g, pi, ropt, &chain);
    bopt.tol = options_.imbalance_tol;
    part::rebalance_greedy(g, pi, bopt, &chain);
  } else {
    ropt.hard_balance = false;
    ropt.beta = options_.beta;
    part::refine_partition(g, pi, ropt);
  }
  if constexpr (check::kLevel >= 2)
    check::enforce(check::check_partition(g, pi), "pnr.initial_partition");
  return pi;
}

part::Partition Pnr::repartition(const graph::Graph& g,
                                 const part::Partition& current,
                                 util::Rng& rng, RepartitionStats* stats,
                                 HierarchyCache* cache) const {
  PNR_PROF_SPAN("pnr.repartition");
  PNR_REQUIRE(current.valid_for(g));
  PNR_REQUIRE(current.num_parts == p_);

  if (stats) {
    stats->cut_before = part::cut_size(g, current);
    stats->imbalance_before = part::imbalance(g, current);
  }

  // Contraction restricted to same-subset pairs: the incoming assignment is
  // constant on every contracted vertex, so it survives to the coarsest
  // level. The constraint must be re-projected at every level, so we build
  // the hierarchy by hand. homes[k] is the incoming assignment expressed on
  // level k's graph (level 0 = g).
  graph::CoarsenOptions copt;
  copt.random_matching = options_.random_matching;
  copt.max_vertex_weight =
      std::max<graph::Weight>(1, g.total_vertex_weight() / (4 * p_));

  // The cache only engages on the partition-restricted path: the ablation
  // re-partitions the coarsest graph, so its matchings need not (and do
  // not) preserve the assignment, and caching them would be wrong to reuse.
  const bool use_cache = cache != nullptr && options_.reuse_hierarchy &&
                         !options_.repartition_coarsest;
  if (cache && !use_cache) cache->clear();
  if (use_cache && !cache->levels.empty() &&
      cache->levels.front().level.fine_to_coarse.size() !=
          static_cast<std::size_t>(g.num_vertices()))
    cache->clear();  // cache built for a different graph

  std::vector<graph::CoarseLevel> owned;  ///< from-scratch path storage
  std::vector<std::vector<part::PartId>> homes{current.assign};
  std::size_t num_levels = 0;
  {
    PNR_PROF_SPAN("pnr.contract");
    // Never contract below a few vertices per subset, or the coarsest
    // level could not even represent the partition.
    const graph::VertexId floor_size =
        std::max<graph::VertexId>(options_.coarsest_size, 4 * p_);
    const graph::Graph* cur = &g;
    std::int64_t hits = 0;
    std::int64_t rematches = 0;
    std::int64_t drift_evictions = 0;
    if (use_cache) {
      while (num_levels < cache->levels.size() &&
             cur->num_vertices() > floor_size) {
        CachedLevel& cl = cache->levels[num_levels];
        const auto& f2c = cl.level.fine_to_coarse;
        const auto nc = static_cast<std::size_t>(cl.level.graph.num_vertices());
        // Churn policy: resolve each matched group's home subset as its
        // heaviest member's (first wins ties, deterministically); when too
        // many fine vertices disagree with their group the cached matching
        // no longer respects the incoming partition, so this level — and
        // everything deeper, whose topology hangs off it — is re-matched.
        const std::vector<part::PartId>& home = homes.back();
        std::vector<part::PartId> coarse_home(nc, -1);
        std::vector<graph::Weight> rep_w(nc, -1);
        for (std::size_t v = 0; v < f2c.size(); ++v) {
          const auto c = static_cast<std::size_t>(f2c[v]);
          const graph::Weight w =
              cur->vertex_weight(static_cast<graph::VertexId>(v));
          if (w > rep_w[c]) {
            rep_w[c] = w;
            coarse_home[c] = home[v];
          }
        }
        std::int64_t mixed = 0;
        for (std::size_t v = 0; v < f2c.size(); ++v)
          if (home[v] != coarse_home[static_cast<std::size_t>(f2c[v])])
            ++mixed;
        if (static_cast<double>(mixed) >
            options_.hierarchy_churn_tol * static_cast<double>(f2c.size())) {
          rematches +=
              static_cast<std::int64_t>(cache->levels.size() - num_levels);
          cache->levels.resize(num_levels);
          break;
        }
        repropagate_weights(*cur, cl);
        // Drift policy: matched groups that outgrew the contraction weight
        // cap would leave the coarsest graph unbalanceable.
        std::int64_t over = 0;
        for (graph::VertexId c = 0; c < cl.level.graph.num_vertices(); ++c)
          if (cl.level.graph.vertex_weight(c) > copt.max_vertex_weight) ++over;
        if (static_cast<double>(over) >
            options_.hierarchy_drift_tol * static_cast<double>(nc)) {
          drift_evictions +=
              static_cast<std::int64_t>(cache->levels.size() - num_levels);
          cache->levels.resize(num_levels);
          break;
        }
        homes.push_back(std::move(coarse_home));
        cur = &cl.level.graph;
        ++num_levels;
        ++hits;
      }
    }
    while (cur->num_vertices() > floor_size) {
      if (!options_.repartition_coarsest) copt.partition = &homes.back();
      graph::CoarseLevel level = graph::coarsen_once(*cur, rng, copt);
      const auto before = cur->num_vertices();
      const auto after = level.graph.num_vertices();
      if (after >= before - before / 10) break;  // contraction stalled
      std::vector<part::PartId> home(
          static_cast<std::size_t>(after), 0);
      for (std::size_t v = 0; v < level.fine_to_coarse.size(); ++v)
        home[static_cast<std::size_t>(level.fine_to_coarse[v])] =
            homes.back()[v];
      homes.push_back(std::move(home));
      if (use_cache) {
        cache->levels.push_back(make_cached_level(*cur, std::move(level)));
        cur = &cache->levels.back().level.graph;
      } else {
        owned.push_back(std::move(level));
        cur = &owned.back().graph;
      }
      ++num_levels;
    }
    if (use_cache) {
      // Levels below an early floor/stall exit would carry stale weights
      // into the next round; drop them.
      if (cache->levels.size() > num_levels) cache->levels.resize(num_levels);
      prof::count("pnr.cache.hits", hits);
      prof::count("pnr.cache.rematches", rematches);
      prof::count("pnr.cache.drift_evictions", drift_evictions);
    }
  }
  std::vector<const graph::CoarseLevel*> levels;
  levels.reserve(num_levels);
  if (use_cache)
    for (std::size_t k = 0; k < num_levels; ++k)
      levels.push_back(&cache->levels[k].level);
  else
    for (const graph::CoarseLevel& l : owned) levels.push_back(&l);
  if (stats) stats->levels = static_cast<int>(levels.size());
  prof::count("pnr.levels", static_cast<std::int64_t>(levels.size()));

  // Start from the projected current assignment (modification (a)) or, in
  // the ablation, partition the coarsest graph from scratch.
  std::vector<part::PartId> assign;
  const graph::Graph& coarsest = levels.empty() ? g : levels.back()->graph;
  if (options_.repartition_coarsest) {
    part::MlklOptions mo;
    assign = part::multilevel_kl(coarsest, p_, rng, mo).assign;
  } else {
    assign = homes.back();
  }

  part::RefineOptions ropt;
  ropt.alpha = options_.alpha;
  ropt.max_passes = options_.max_passes;
  if (options_.hard_balance) {
    // Two-phase refinement (see PnrOptions::hard_balance): an explicit
    // rebalance pass restores feasibility — its move count is close to the
    // Section 8 lower estimate, because the excess weight must move — and
    // then the migration-aware KL improves the cut under a hard balance cap
    // with the β term off (its quadratic lock would otherwise freeze every
    // heavy vertex and let the cut decay level after level).
    ropt.hard_balance = true;
    ropt.imbalance_tol = options_.imbalance_tol;
    ropt.beta = 0.0;
  } else {
    // Literal Eq. 1 objective (kept for the ablation bench).
    ropt.hard_balance = false;
    ropt.beta = options_.beta;
  }

  // Refine at the coarsest level, then uncoarsen and refine at each finer
  // level — the migration-aware KL of Section 9 at every step.
  PNR_PROF_SPAN("pnr.uncoarsen_refine");
  // The conn table (and quotient graph) stay exact across the calls of one
  // level's rebalance → refine chain, so only the first pass per level pays
  // the O(E) build; the projection to the next level invalidates them.
  part::SharedConnState chain;
  for (std::size_t k = levels.size() + 1; k-- > 0;) {
    const graph::Graph& level_graph = k == 0 ? g : levels[k - 1]->graph;
    chain.invalidate();
    if (options_.hard_balance) {
      part::RebalanceOptions bopt;
      bopt.tol = options_.imbalance_tol / 2.0;
      bopt.alpha = options_.alpha;
      bopt.home = &homes[k];
      part::Partition pi(p_, std::move(assign));
      part::rebalance_greedy(level_graph, pi, bopt, &chain);
      assign = std::move(pi.assign);
    }
    ropt.home = &homes[k];
    part::Partition pi(p_, std::move(assign));
    part::refine_partition(level_graph, pi, ropt, &chain);
    if (k == 0 && options_.hard_balance) {
      // KL's per-move slack can leave a heavy-vertex overshoot; drain it,
      // let KL polish the cut from the feasible point, and drain once more
      // so the reported ε ≤ tol.
      part::RebalanceOptions bopt;
      bopt.tol = options_.imbalance_tol;
      bopt.alpha = options_.alpha;
      bopt.home = &homes[0];
      part::rebalance_greedy(level_graph, pi, bopt, &chain);
      part::refine_partition(level_graph, pi, ropt, &chain);
      part::rebalance_greedy(level_graph, pi, bopt, &chain);
    }
    assign = std::move(pi.assign);
    if (k > 0)
      assign =
          graph::project_partition(levels[k - 1]->fine_to_coarse, assign);
  }

  part::Partition result(p_, std::move(assign));
  if constexpr (check::kLevel >= 2)
    check::enforce(check::check_partition(g, result), "pnr.repartition");
  if (stats) {
    stats->cut_after = part::cut_size(g, result);
    stats->migrate = part::migration_cost(g, current, result);
    stats->imbalance_after = part::imbalance(g, result);
  }
  return result;
}

}  // namespace pnr::core
