#include "core/hierarchy_cache.hpp"

#include <algorithm>

#include "check/level.hpp"
#include "util/assert.hpp"
#include "util/prof.hpp"

namespace pnr::core {

CachedLevel make_cached_level(const graph::Graph& fine,
                              graph::CoarseLevel level) {
  PNR_PROF_SPAN("pnr.cache_fill");
  CachedLevel out{std::move(level), {}};
  const auto& f2c = out.level.fine_to_coarse;
  const graph::Graph& coarse = out.level.graph;
  const auto& cxadj = coarse.xadj();
  const auto num_arcs = static_cast<std::size_t>(fine.xadj().back());
  out.arc_slot.assign(num_arcs, -1);
  for (graph::VertexId v = 0; v < fine.num_vertices(); ++v) {
    const graph::VertexId cv = f2c[static_cast<std::size_t>(v)];
    const auto nbrs = coarse.neighbors(cv);
    std::size_t a = static_cast<std::size_t>(fine.xadj()[v]);
    for (const graph::VertexId u : fine.neighbors(v)) {
      const graph::VertexId cu = f2c[static_cast<std::size_t>(u)];
      if (cu != cv) {
        // Coarse adjacency lists are sorted by neighbor id (the CSR
        // assembler guarantees it), so the slot is a binary search away.
        const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), cu);
        PNR_ASSERT(it != nbrs.end() && *it == cu);
        out.arc_slot[a] = cxadj[cv] + (it - nbrs.begin());
      }
      ++a;
    }
  }
  return out;
}

void repropagate_weights(const graph::Graph& fine, CachedLevel& lvl) {
  PNR_PROF_SPAN("pnr.cache_repropagate");
  const auto& f2c = lvl.level.fine_to_coarse;
  auto cvw = lvl.level.graph.mutable_vertex_weights();
  std::fill(cvw.begin(), cvw.end(), 0);
  for (graph::VertexId v = 0; v < fine.num_vertices(); ++v)
    cvw[static_cast<std::size_t>(f2c[static_cast<std::size_t>(v)])] +=
        fine.vertex_weight(v);

  auto caw = lvl.level.graph.mutable_arc_weights();
  std::fill(caw.begin(), caw.end(), 0);
  const auto& fw = fine.adjwgt();
  for (std::size_t a = 0; a < fw.size(); ++a) {
    const std::int64_t slot = lvl.arc_slot[a];
    if (slot >= 0) caw[static_cast<std::size_t>(slot)] += fw[a];
  }

  PNR_CHECK1(
      lvl.level.graph.total_vertex_weight() == fine.total_vertex_weight(),
      "cached re-propagation changed the total vertex weight");
  PNR_CHECK2_AUDIT("pnr.cache_repropagate", lvl.level.graph.validate());
}

}  // namespace pnr::core
