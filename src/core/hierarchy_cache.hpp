#pragma once
// Cross-round contraction hierarchy cache for PNR (the perf counterpart of
// Section 9's modification (a)): because G's topology is fixed for the whole
// run, a level's matching and contracted CSR topology stay valid across
// adaptation rounds — only the weights move. The cache keeps each level's
// CoarseLevel plus a per-fine-arc slot map into the coarse arc-weight array,
// so a later round re-propagates all weights in O(fine arcs) with no
// matching, hashing or sorting. Pnr::repartition owns the staleness policy
// (evict on partition-boundary churn or weight drift); the cache itself is a
// dumb container owned by whoever owns the graph (pared::Session, svc graph
// sessions, benches).

#include <cstdint>
#include <vector>

#include "graph/coarsen.hpp"
#include "graph/csr.hpp"

namespace pnr::core {

struct CachedLevel {
  graph::CoarseLevel level;
  /// Fine arc index -> index into level.graph's arc-weight array (the coarse
  /// arc this fine arc folds into), or -1 for arcs internal to a matched
  /// group. Both directions of every fine edge carry a slot, so one
  /// accumulation pass fills both directions of every coarse arc equally.
  std::vector<std::int64_t> arc_slot;
};

struct HierarchyCache {
  std::vector<CachedLevel> levels;
  void clear() { levels.clear(); }
};

/// Wrap a freshly contracted level with its fine-arc slot map (one binary
/// search per fine arc, paid once per topology).
CachedLevel make_cached_level(const graph::Graph& fine,
                              graph::CoarseLevel level);

/// Rewrite the level's vertex and arc weights from the fine graph through
/// the cached maps. O(fine arcs); the contracted topology is untouched.
void repropagate_weights(const graph::Graph& fine, CachedLevel& lvl);

}  // namespace pnr::core
