#pragma once
// Parallel Nested Repartitioning (Sections 5 and 9 of the paper).
//
// PNR operates on the weighted dual graph G of the *initial* mesh M^0: one
// vertex per coarse element with weight = number of leaves of its refinement
// history tree; edge weights = adjacent leaf pairs across the interface.
// The initial partition of G uses a standard multilevel algorithm. Every
// subsequent repartition uses a modified Multilevel-KL:
//   (a) the coarsest contracted graph is NOT re-partitioned — contraction is
//       restricted to vertices in the same subset, so the current assignment
//       projects onto it unchanged;
//   (b) the KL gain reflects C_repartition(Π, Π̂, α, β) of Eq. 1, so moves
//       trade cut against migration and (squared-deviation) balance.
// The paper's experiments use α = 0.1 and β = 0.8 and report ε < 0.01.

#include <vector>

#include "graph/coarsen.hpp"
#include "graph/csr.hpp"
#include "partition/partition.hpp"
#include "partition/partitioner.hpp"
#include "util/rng.hpp"

namespace pnr::core {

struct PnrOptions {
  double alpha = 0.1;  ///< migration cost weight in Eq. 1
  double beta = 0.8;   ///< balance cost weight in Eq. 1
  /// Also impose balance as a hard constraint during refinement. The soft β
  /// term alone makes heavy-vertex moves prohibitively expensive (the
  /// quadratic penalty of temporarily unbalancing by one deep refinement
  /// tree dwarfs any cut gain), which freezes the cut; a hard cap with the
  /// β pressure inside it reproduces the paper's ε < 0.01 *and* its cut
  /// parity. See bench_ablation_alpha_beta for the measured difference.
  bool hard_balance = true;
  double imbalance_tol = 0.01;  ///< the paper reports ε < 0.01
  int max_passes = 12;
  graph::VertexId coarsest_size = 64;
  /// Ablation switch: re-partition the coarsest graph from scratch instead
  /// of keeping the current assignment (turns off modification (a) and
  /// reproduces the "standard heuristics migrate half the mesh" failure).
  bool repartition_coarsest = false;
  /// Ablation switch: random matching instead of heavy-edge.
  bool random_matching = false;
  /// Algorithm for the very first partition of G.
  part::Method initial_method = part::Method::kMultilevelKL;
  double initial_imbalance_tol = 0.03;
  /// Reuse the contraction hierarchy across repartition calls when the
  /// caller passes a HierarchyCache: cached levels re-propagate weights
  /// through their fixed matchings instead of re-matching. Escape hatch:
  /// off (or no cache) restores the from-scratch path bit-for-bit.
  bool reuse_hierarchy = true;
  /// Evict a cached level (and everything deeper) when more than this
  /// fraction of its fine vertices sit in matched groups whose members the
  /// incoming assignment now splits across subsets — the partition-boundary
  /// churn under which modification (a) degrades. The default is tight on
  /// purpose: the heaviest-member home approximation on split groups
  /// compounds per level, and above ~1% churn it costs several percent of
  /// cut/migration quality per reused level.
  double hierarchy_churn_tol = 0.01;
  /// Evict when more than this fraction of a cached level's coarse vertices
  /// outgrew the current contraction weight cap (weight drift would leave
  /// the coarsest graph unbalanceable).
  double hierarchy_drift_tol = 0.10;
};

/// The measures the paper's tables report for one repartitioning step.
struct RepartitionStats {
  graph::Weight cut_before = 0;      ///< C_cut of the incoming assignment
  graph::Weight cut_after = 0;       ///< C_cut(Π̂^t)
  graph::Weight migrate = 0;         ///< C_migrate(Π^t, Π̂^t) in fine elements
  double imbalance_before = 0.0;
  double imbalance_after = 0.0;      ///< the paper's ε
  int levels = 0;                    ///< contraction levels used
};

struct HierarchyCache;  // core/hierarchy_cache.hpp

class Pnr {
 public:
  explicit Pnr(part::PartId p, PnrOptions options = {});

  part::PartId num_parts() const { return p_; }
  const PnrOptions& options() const { return options_; }

  /// First partition of the weighted coarse graph (standard multilevel,
  /// polished with the soft-balance objective to reach small ε).
  part::Partition initial_partition(const graph::Graph& g, util::Rng& rng) const;

  /// Repartition after adaptation: `current` is Π^{t-1} carried to the
  /// updated weights of `g`; the result is Π̂^t minimizing Eq. 1. When
  /// `cache` is non-null (and reuse_hierarchy is on) the contraction
  /// hierarchy persists in it across calls; pass the same cache for the
  /// same graph only — topology mismatches are evicted, not detected.
  part::Partition repartition(const graph::Graph& g,
                              const part::Partition& current, util::Rng& rng,
                              RepartitionStats* stats = nullptr,
                              HierarchyCache* cache = nullptr) const;

 private:
  part::PartId p_;
  PnrOptions options_;
};

}  // namespace pnr::core
