#include "core/snap.hpp"

#include "util/assert.hpp"

namespace pnr::core {

namespace {

template <typename Mesh, typename CoarseOf>
SnapResult snap_impl(const Mesh& mesh, const std::vector<mesh::ElemIdx>& elems,
                     const std::vector<part::PartId>& fine_assign,
                     part::PartId num_parts, CoarseOf&& coarse_of) {
  PNR_REQUIRE(fine_assign.size() == elems.size());
  const auto n0 = static_cast<std::size_t>(mesh.num_initial_elements());
  const auto p = static_cast<std::size_t>(num_parts);

  // votes[c*p + q] = leaves of coarse element c currently on processor q.
  std::vector<std::int64_t> votes(n0 * p, 0);
  for (std::size_t i = 0; i < elems.size(); ++i) {
    const auto c = static_cast<std::size_t>(coarse_of(elems[i]));
    ++votes[c * p + static_cast<std::size_t>(fine_assign[i])];
  }

  SnapResult out;
  out.coarse_assign.resize(n0, 0);
  for (std::size_t c = 0; c < n0; ++c) {
    std::int64_t best = -1;
    for (std::size_t q = 0; q < p; ++q)
      if (votes[c * p + q] > best) {
        best = votes[c * p + q];
        out.coarse_assign[c] = static_cast<part::PartId>(q);
      }
  }

  out.fine_assign.resize(elems.size());
  for (std::size_t i = 0; i < elems.size(); ++i)
    out.fine_assign[i] =
        out.coarse_assign[static_cast<std::size_t>(coarse_of(elems[i]))];
  return out;
}

}  // namespace

SnapResult snap_to_coarse(const mesh::TriMesh& mesh,
                          const std::vector<mesh::ElemIdx>& elems,
                          const std::vector<part::PartId>& fine_assign,
                          part::PartId num_parts) {
  return snap_impl(mesh, elems, fine_assign, num_parts,
                   [&](mesh::ElemIdx e) { return mesh.tri(e).coarse; });
}

SnapResult snap_to_coarse(const mesh::TetMesh& mesh,
                          const std::vector<mesh::ElemIdx>& elems,
                          const std::vector<part::PartId>& fine_assign,
                          part::PartId num_parts) {
  return snap_impl(mesh, elems, fine_assign, num_parts,
                   [&](mesh::ElemIdx e) { return mesh.tet(e).coarse; });
}

}  // namespace pnr::core
