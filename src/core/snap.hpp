#pragma once
// The constructive side of Theorem 6.1: turn an arbitrary partition of the
// fine mesh M^t into one that respects the boundaries of the initial mesh
// M^0 (i.e., assigns every refinement tree to a single processor, which is
// the only kind of partition PNR can express). Each coarse element goes to
// the processor owning the plurality of its leaves. The theorem bounds the
// cut expansion of such a snap by a constant factor and the extra imbalance
// by (p−1)d² under uniform depth-d refinement; the tests and the
// bench_ablation_nested harness measure both.

#include <vector>

#include "mesh/dual.hpp"
#include "mesh/tet_mesh.hpp"
#include "mesh/tri_mesh.hpp"
#include "partition/partition.hpp"

namespace pnr::core {

struct SnapResult {
  /// Per-initial-element subset (a valid assignment for the nested graph).
  std::vector<part::PartId> coarse_assign;
  /// The same partition expanded back to the fine leaves.
  std::vector<part::PartId> fine_assign;
};

/// `elems`/`fine_assign` describe a partition of the leaves (dense order as
/// produced by mesh::fine_dual_graph / leaf_elements).
SnapResult snap_to_coarse(const mesh::TriMesh& mesh,
                          const std::vector<mesh::ElemIdx>& elems,
                          const std::vector<part::PartId>& fine_assign,
                          part::PartId num_parts);
SnapResult snap_to_coarse(const mesh::TetMesh& mesh,
                          const std::vector<mesh::ElemIdx>& elems,
                          const std::vector<part::PartId>& fine_assign,
                          part::PartId num_parts);

}  // namespace pnr::core
