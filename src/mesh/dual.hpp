#pragma once
// Dual graph extraction — the bridge between meshes and partitioners.
//
// * fine dual graph: one vertex per *leaf* element, an edge when two leaves
//   share an edge (2D) or face (3D); unit weights. This is what the RSB /
//   Multilevel-KL baselines partition, exactly as the paper's Section 7 does.
// * nested (coarse) dual graph: one vertex per *initial* element Ω_a with
//   weight = number of leaves of its refinement tree τ_a; an edge between
//   initial elements with weight = number of adjacent leaf pairs across
//   their interface. This is the graph G that PNR partitions (Section 5).

#include <span>
#include <vector>

#include "graph/csr.hpp"
#include "mesh/tet_mesh.hpp"
#include "mesh/tri_mesh.hpp"
#include "partition/partition.hpp"

namespace pnr::mesh {

struct FineDual {
  graph::Graph graph;
  std::vector<ElemIdx> elems;          ///< dense dual vertex -> element id
  std::vector<graph::VertexId> dense;  ///< element id -> dual vertex (or -1)
};

FineDual fine_dual_graph(const TriMesh& mesh);
FineDual fine_dual_graph(const TetMesh& mesh);

/// The PNR coarse graph G of M^0 with leaf-count vertex weights and
/// adjacent-leaf-pair edge weights.
graph::Graph nested_dual_graph(const TriMesh& mesh);
graph::Graph nested_dual_graph(const TetMesh& mesh);

/// The weight changes of G accumulated by a mesh between two drains of
/// TriMesh/TetMesh::drain_dual_delta(). `vertices` lists, sorted and
/// deduplicated, the initial elements whose refinement trees were touched by
/// bisection or coarsening; only their leaf-count vertex weights and the
/// edge weights of interfaces incident to them can have moved. G's topology
/// never changes (Section 5: M^0 is fixed), so a consumer holding a graph
/// that was current at `prev_epoch` reaches `epoch` by re-propagating those
/// weights in place. Any epoch gap means another consumer drained the mesh
/// in between and a full nested_dual_graph rebuild is required.
struct DualWeightDelta {
  std::vector<ElemIdx> vertices;
  std::uint64_t prev_epoch = 0;
  std::uint64_t epoch = 0;
};

/// Re-propagate the delta's vertex weights and incident interface weights
/// into `g`, a nested_dual_graph of `mesh` current at `delta.prev_epoch`.
/// Returns false — with `g` partially updated, caller must rebuild — if the
/// mesh disagrees with g's fixed topology (an interface weight at zero or an
/// adjacency g does not know about), which indicates the graph was not built
/// from this mesh.
bool apply_dual_delta(const TriMesh& mesh, const DualWeightDelta& delta,
                      graph::Graph& g);
bool apply_dual_delta(const TetMesh& mesh, const DualWeightDelta& delta,
                      graph::Graph& g);

/// Leaf centroids in dense dual-vertex order (row-major n×2 / n×3), for the
/// geometric partitioner.
std::vector<double> leaf_centroids(const TriMesh& mesh,
                                   const std::vector<ElemIdx>& elems);
std::vector<double> leaf_centroids(const TetMesh& mesh,
                                   const std::vector<ElemIdx>& elems);

/// Initial-element centroids in nested-dual vertex order (row-major n×2 /
/// n×3), for the geometric engines over the coarse graph. M^0 is fixed, so
/// one computation per session suffices.
std::vector<double> coarse_centroids(const TriMesh& mesh);
std::vector<double> coarse_centroids(const TetMesh& mesh);

/// Expand a partition of the nested coarse graph to the fine leaves: leaf i
/// (dense order of `elems`) inherits the subset of its level-0 ancestor.
std::vector<part::PartId> project_coarse_assignment(
    const TriMesh& mesh, const std::vector<ElemIdx>& elems,
    std::span<const part::PartId> coarse_assign);
std::vector<part::PartId> project_coarse_assignment(
    const TetMesh& mesh, const std::vector<ElemIdx>& elems,
    std::span<const part::PartId> coarse_assign);

}  // namespace pnr::mesh
