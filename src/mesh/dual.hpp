#pragma once
// Dual graph extraction — the bridge between meshes and partitioners.
//
// * fine dual graph: one vertex per *leaf* element, an edge when two leaves
//   share an edge (2D) or face (3D); unit weights. This is what the RSB /
//   Multilevel-KL baselines partition, exactly as the paper's Section 7 does.
// * nested (coarse) dual graph: one vertex per *initial* element Ω_a with
//   weight = number of leaves of its refinement tree τ_a; an edge between
//   initial elements with weight = number of adjacent leaf pairs across
//   their interface. This is the graph G that PNR partitions (Section 5).

#include <span>
#include <vector>

#include "graph/csr.hpp"
#include "mesh/tet_mesh.hpp"
#include "mesh/tri_mesh.hpp"
#include "partition/partition.hpp"

namespace pnr::mesh {

struct FineDual {
  graph::Graph graph;
  std::vector<ElemIdx> elems;          ///< dense dual vertex -> element id
  std::vector<graph::VertexId> dense;  ///< element id -> dual vertex (or -1)
};

FineDual fine_dual_graph(const TriMesh& mesh);
FineDual fine_dual_graph(const TetMesh& mesh);

/// The PNR coarse graph G of M^0 with leaf-count vertex weights and
/// adjacent-leaf-pair edge weights.
graph::Graph nested_dual_graph(const TriMesh& mesh);
graph::Graph nested_dual_graph(const TetMesh& mesh);

/// Leaf centroids in dense dual-vertex order (row-major n×2 / n×3), for the
/// geometric partitioner.
std::vector<double> leaf_centroids(const TriMesh& mesh,
                                   const std::vector<ElemIdx>& elems);
std::vector<double> leaf_centroids(const TetMesh& mesh,
                                   const std::vector<ElemIdx>& elems);

/// Expand a partition of the nested coarse graph to the fine leaves: leaf i
/// (dense order of `elems`) inherits the subset of its level-0 ancestor.
std::vector<part::PartId> project_coarse_assignment(
    const TriMesh& mesh, const std::vector<ElemIdx>& elems,
    std::span<const part::PartId> coarse_assign);
std::vector<part::PartId> project_coarse_assignment(
    const TetMesh& mesh, const std::vector<ElemIdx>& elems,
    std::span<const part::PartId> coarse_assign);

}  // namespace pnr::mesh
