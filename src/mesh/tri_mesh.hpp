#pragma once
// Two-dimensional unstructured triangle mesh with local adaptation à la
// PARED (Section 2 of the paper):
//  * refinement is Rivara's longest-edge bisection with recursive conformity
//    propagation — refining a triangle whose longest edge is interior always
//    bisects the cross-edge partner too, so the mesh stays conforming;
//  * refined elements are never destroyed: each initial element roots a
//    refinement-history tree whose leaves are the current (most refined)
//    mesh; coarsening replaces a sibling pair by its parent;
//  * every element knows its level-0 ancestor, so the PNR coarse dual graph
//    weights (leaves per initial element) are maintained in O(1) per
//    bisection.

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "mesh/types.hpp"
#include "util/rng.hpp"

namespace pnr::mesh {

struct DualWeightDelta;  // mesh/dual.hpp

class TriMesh {
 public:
  struct Tri {
    std::array<VertIdx, 3> v{kNoVert, kNoVert, kNoVert};
    ElemIdx parent = kNoElem;
    std::array<ElemIdx, 2> child{kNoElem, kNoElem};
    VertIdx mid = kNoVert;   ///< bisection midpoint (set when refined)
    ElemIdx coarse = kNoElem;  ///< level-0 ancestor
    /// User payload that follows adaptation: children inherit it on
    /// bisection, a restored parent takes it back from its first child on
    /// coarsening. PARED uses it to carry the owning processor.
    std::int32_t tag = -1;
    std::int16_t level = 0;
    bool leaf = false;   ///< current finest-mesh member
    bool alive = false;  ///< false for recycled slots
  };

  // ---- construction -------------------------------------------------------

  /// Add a vertex / initial triangle while building the 0-level mesh.
  VertIdx add_vertex(double x, double y);
  ElemIdx add_triangle(VertIdx a, VertIdx b, VertIdx c);

  /// Freeze the 0-level mesh: orient all triangles CCW, build the leaf-edge
  /// incidence map, assign coarse ancestors. Must be called exactly once
  /// before any refinement.
  void finalize();

  // ---- queries -------------------------------------------------------------

  ElemIdx num_initial_elements() const { return num_initial_; }
  std::int64_t num_leaves() const { return num_leaves_; }
  std::int64_t num_vertices_alive() const { return num_verts_alive_; }
  std::size_t element_slots() const { return tris_.size(); }
  std::size_t vertex_slots() const { return verts_.size(); }

  const Tri& tri(ElemIdx e) const { return tris_[static_cast<std::size_t>(e)]; }
  void set_tag(ElemIdx e, std::int32_t tag) {
    tris_[static_cast<std::size_t>(e)].tag = tag;
  }
  std::int32_t tag(ElemIdx e) const {
    return tris_[static_cast<std::size_t>(e)].tag;
  }
  const Point2& vertex(VertIdx v) const {
    return verts_[static_cast<std::size_t>(v)];
  }
  bool vertex_alive(VertIdx v) const {
    return vert_alive_[static_cast<std::size_t>(v)];
  }
  bool is_leaf(ElemIdx e) const {
    return tris_[static_cast<std::size_t>(e)].alive &&
           tris_[static_cast<std::size_t>(e)].leaf;
  }

  /// Leaves in ascending element-id order (deterministic).
  std::vector<ElemIdx> leaf_elements() const;

  /// Number of leaves below initial element `coarse` (its dual-graph vertex
  /// weight in PNR).
  std::int64_t leaf_count(ElemIdx coarse) const {
    return leaf_count_[static_cast<std::size_t>(coarse)];
  }

  /// Current adjacent-leaf-pair count across the {c1, c2} interface; 0 when
  /// the two initial elements are not adjacent.
  std::int64_t coarse_interface_weight(ElemIdx c1, ElemIdx c2) const;

  /// Monotone counter bumped by every refine/coarsen call that changed the
  /// mesh. Consumers of derived state (dual graphs, cached step metrics) use
  /// it to detect staleness.
  std::uint64_t adapt_version() const { return adapt_version_; }

  /// Hand over the set of initial elements whose refinement trees changed
  /// since the previous drain (see DualWeightDelta in mesh/dual.hpp) and
  /// reset it. Single-consumer: the delta's epoch pair chains consecutive
  /// drains so a second consumer can detect the gap and rebuild.
  DualWeightDelta drain_dual_delta();

  double signed_area(ElemIdx e) const;
  Point2 centroid(ElemIdx e) const;

  /// The leaf on the other side of leaf edge {a,b} from `e` (kNoElem at the
  /// domain boundary).
  ElemIdx edge_partner(ElemIdx e, VertIdx a, VertIdx b) const;

  /// Visit every leaf edge once: callback(a, b, elem1, elem2) where elem2 is
  /// kNoElem for boundary edges.
  template <typename F>
  void for_each_leaf_edge(F&& f) const {
    for (const auto& [key, pair] : edge_map_) {
      const auto a = static_cast<VertIdx>(key & 0xffffffffull);
      const auto b = static_cast<VertIdx>(key >> 32);
      f(a, b, pair[0], pair[1]);
    }
  }

  /// Vertices lying on the domain boundary (endpoints of single-element
  /// edges). Recomputed on each call.
  std::vector<char> boundary_vertex_mask() const;

  /// Visit every adjacent pair of initial elements with the current number
  /// of adjacent leaf pairs across their interface — the edge weights of
  /// the PNR coarse graph, maintained incrementally by every bisection and
  /// coarsening (the paper's P1 phase): callback(c1, c2, weight), c1 < c2.
  template <typename F>
  void for_each_coarse_interface(F&& f) const {
    for (const auto& [key, w] : coarse_interface_) {
      if (w == 0) continue;
      f(static_cast<ElemIdx>(key & 0xffffffffull),
        static_cast<ElemIdx>(key >> 32), w);
    }
  }

  // ---- adaptation -----------------------------------------------------------

  /// Bisect each marked leaf once (plus whatever conformity propagation
  /// demands). Returns the number of bisections performed.
  std::int64_t refine(const std::vector<ElemIdx>& marked);

  /// Undo bisections whose four (two at the boundary) child leaves are all
  /// marked and whose midpoint is used by no other leaf. Returns the number
  /// of parent elements restored.
  std::int64_t coarsen(const std::vector<ElemIdx>& marked);

  // ---- validation -----------------------------------------------------------

  /// Empty string when the mesh is a conforming triangulation with a
  /// consistent refinement forest and edge map; otherwise a description of
  /// the first violation found.
  std::string check_invariants() const;

 private:
  VertIdx new_vertex(double x, double y);
  ElemIdx new_element();
  void release_element(ElemIdx e);
  void release_vertex(VertIdx v);

  void edge_map_add(ElemIdx e);
  void edge_map_remove(ElemIdx e);

  /// Longest edge of leaf e as (a, b) with deterministic tie-breaking.
  std::pair<VertIdx, VertIdx> longest_edge(ElemIdx e) const;

  /// Split leaf `e` by edge {a,b} using midpoint vertex m.
  void bisect(ElemIdx e, VertIdx a, VertIdx b, VertIdx m);

  /// Record that `coarse`'s subtree changed shape: its dual vertex weight
  /// and any incident interface weight may move, nothing else can (the
  /// coarse topology is fixed).
  void mark_dual_dirty(ElemIdx coarse) {
    if (!dual_dirty_mark_[static_cast<std::size_t>(coarse)]) {
      dual_dirty_mark_[static_cast<std::size_t>(coarse)] = true;
      dual_dirty_.push_back(coarse);
    }
  }

  std::vector<Point2> verts_;
  std::vector<char> vert_alive_;
  std::vector<Tri> tris_;
  std::vector<ElemIdx> free_elems_;
  std::vector<VertIdx> free_verts_;
  std::vector<std::int64_t> leaf_count_;  ///< per initial element

  /// Leaf edge {a,b} -> the one or two leaves containing it.
  std::unordered_map<std::uint64_t, std::array<ElemIdx, 2>> edge_map_;
  /// (lo coarse id, hi coarse id) -> adjacent leaf pairs across the
  /// interface; kept in sync by edge_map_add/edge_map_remove.
  std::unordered_map<std::uint64_t, std::int64_t> coarse_interface_;

  /// Dirty set for DualWeightDelta: initial elements touched by bisect /
  /// coarsen since the last drain, plus the drain epoch counter.
  std::vector<char> dual_dirty_mark_;
  std::vector<ElemIdx> dual_dirty_;
  std::uint64_t dual_drains_ = 0;
  std::uint64_t adapt_version_ = 0;

  ElemIdx num_initial_ = 0;
  std::int64_t num_leaves_ = 0;
  std::int64_t num_verts_alive_ = 0;
  bool finalized_ = false;
};

}  // namespace pnr::mesh
