#pragma once
// SVG rendering of partitioned 2D meshes — how we reproduce the mesh
// pictures of Figures 1 and 6 (the adapted corner and moving-peak meshes).

#include <string>
#include <vector>

#include "mesh/tri_mesh.hpp"
#include "partition/partition.hpp"

namespace pnr::mesh {

struct SvgOptions {
  int width_px = 900;
  bool draw_edges = true;
  double stroke_width = 0.15;
};

/// Render the leaves filled by subset color (pass an empty assignment to
/// draw the bare mesh). Returns false on I/O failure.
bool write_partition_svg(const TriMesh& mesh,
                         const std::vector<ElemIdx>& elems,
                         const std::vector<part::PartId>& assign,
                         const std::string& path,
                         const SvgOptions& options = {});

}  // namespace pnr::mesh
