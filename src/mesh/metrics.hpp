#pragma once
// Mesh-level partition quality measures. The paper reports quality as the
// "number of shared vertices": mesh vertices adjacent to elements assigned
// to more than one processor (they carry duplicated unknowns and drive the
// communication volume of the solver).

#include <cstdint>
#include <span>
#include <vector>

#include "mesh/tet_mesh.hpp"
#include "mesh/tri_mesh.hpp"
#include "partition/partition.hpp"

namespace pnr::mesh {

/// `assign[i]` is the subset of leaf `elems[i]`. Each vertex touching ≥ 2
/// distinct subsets counts once.
std::int64_t shared_vertices(const TriMesh& mesh,
                             const std::vector<ElemIdx>& elems,
                             std::span<const part::PartId> assign);
std::int64_t shared_vertices(const TetMesh& mesh,
                             const std::vector<ElemIdx>& elems,
                             std::span<const part::PartId> assign);

/// Number of distinct subsets adjacent to each subset (the paper notes that
/// on high-latency networks the number of adjacent subdomains matters too).
/// Returns per-part counts.
std::vector<std::int32_t> adjacent_subdomains(
    const graph::Graph& fine_dual, std::span<const part::PartId> assign,
    part::PartId num_parts);

struct MeshQuality {
  double min_angle_deg = 0.0;   ///< over all leaf triangles (2D only)
  double max_angle_deg = 0.0;
  double min_volume = 0.0;      ///< min leaf area/volume
  double max_volume = 0.0;
};

MeshQuality mesh_quality(const TriMesh& mesh);
MeshQuality mesh_quality(const TetMesh& mesh);  ///< angles left at 0

}  // namespace pnr::mesh
