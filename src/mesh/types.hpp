#pragma once
// Shared index types and hash keys for the mesh layer. Elements and vertices
// are referenced by 32-bit indices into flat arrays; edges and faces are
// identified by packed sorted vertex tuples so they hash identically from
// either side.

#include <array>
#include <cstdint>

namespace pnr::mesh {

using VertIdx = std::int32_t;
using ElemIdx = std::int32_t;

constexpr VertIdx kNoVert = -1;
constexpr ElemIdx kNoElem = -1;

/// Canonical key for the undirected edge {a, b}.
inline std::uint64_t edge_key(VertIdx a, VertIdx b) {
  const auto lo = static_cast<std::uint64_t>(a < b ? a : b);
  const auto hi = static_cast<std::uint64_t>(a < b ? b : a);
  return (hi << 32) | lo;
}

/// Canonical key for the triangular face {a, b, c}. Vertices fit in 21 bits
/// each (meshes up to 2M vertices), packed sorted.
inline std::uint64_t face_key(VertIdx a, VertIdx b, VertIdx c) {
  VertIdx v0 = a, v1 = b, v2 = c;
  if (v0 > v1) { const VertIdx t = v0; v0 = v1; v1 = t; }
  if (v1 > v2) { const VertIdx t = v1; v1 = v2; v2 = t; }
  if (v0 > v1) { const VertIdx t = v0; v0 = v1; v1 = t; }
  return (static_cast<std::uint64_t>(v0) << 42) |
         (static_cast<std::uint64_t>(v1) << 21) |
         static_cast<std::uint64_t>(v2);
}

struct Point2 {
  double x = 0.0;
  double y = 0.0;
};

struct Point3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;
};

}  // namespace pnr::mesh
