#include "mesh/svg.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>

#include "util/assert.hpp"

namespace pnr::mesh {

namespace {

/// Evenly spaced hues, medium saturation/lightness; distinct up to ~64 parts.
std::string part_color(part::PartId p, part::PartId num_parts) {
  if (num_parts <= 0) return "#dddddd";
  const double golden = 0.61803398875;
  const double h = std::fmod(0.12 + golden * static_cast<double>(p), 1.0);
  const double s = 0.55, v = 0.92;
  const double c = v * s;
  const double hp = h * 6.0;
  const double x = c * (1.0 - std::abs(std::fmod(hp, 2.0) - 1.0));
  double r = 0, g = 0, b = 0;
  switch (static_cast<int>(hp)) {
    case 0: r = c; g = x; break;
    case 1: r = x; g = c; break;
    case 2: g = c; b = x; break;
    case 3: g = x; b = c; break;
    case 4: r = x; b = c; break;
    default: r = c; b = x; break;
  }
  const double m = v - c;
  char buf[16];
  std::snprintf(buf, sizeof buf, "#%02x%02x%02x",
                static_cast<int>((r + m) * 255.0),
                static_cast<int>((g + m) * 255.0),
                static_cast<int>((b + m) * 255.0));
  return buf;
}

}  // namespace

bool write_partition_svg(const TriMesh& mesh,
                         const std::vector<ElemIdx>& elems,
                         const std::vector<part::PartId>& assign,
                         const std::string& path, const SvgOptions& options) {
  PNR_REQUIRE(assign.empty() || assign.size() == elems.size());
  if (elems.empty()) return false;

  double min_x = 1e300, min_y = 1e300, max_x = -1e300, max_y = -1e300;
  for (const ElemIdx e : elems)
    for (const VertIdx v : mesh.tri(e).v) {
      const Point2& p = mesh.vertex(v);
      min_x = std::min(min_x, p.x);
      max_x = std::max(max_x, p.x);
      min_y = std::min(min_y, p.y);
      max_y = std::max(max_y, p.y);
    }
  const double span_x = std::max(max_x - min_x, 1e-12);
  const double span_y = std::max(max_y - min_y, 1e-12);
  const double scale = options.width_px / span_x;
  const int height_px = static_cast<int>(span_y * scale) + 1;

  part::PartId num_parts = 0;
  for (const part::PartId p : assign) num_parts = std::max(num_parts, p + 1);

  std::ofstream f(path);
  if (!f) return false;
  f << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << options.width_px
    << "\" height=\"" << height_px << "\" viewBox=\"0 0 " << options.width_px
    << ' ' << height_px << "\">\n";

  auto px = [&](const Point2& p) { return (p.x - min_x) * scale; };
  auto py = [&](const Point2& p) { return (max_y - p.y) * scale; };  // y up

  for (std::size_t i = 0; i < elems.size(); ++i) {
    const auto& t = mesh.tri(elems[i]);
    const Point2& p0 = mesh.vertex(t.v[0]);
    const Point2& p1 = mesh.vertex(t.v[1]);
    const Point2& p2 = mesh.vertex(t.v[2]);
    const std::string fill =
        assign.empty() ? "#f2f2f2" : part_color(assign[i], num_parts);
    f << "<polygon points=\"" << px(p0) << ',' << py(p0) << ' ' << px(p1)
      << ',' << py(p1) << ' ' << px(p2) << ',' << py(p2) << "\" fill=\""
      << fill << '"';
    if (options.draw_edges)
      f << " stroke=\"#333333\" stroke-width=\"" << options.stroke_width
        << '"';
    f << "/>\n";
  }
  f << "</svg>\n";
  return static_cast<bool>(f);
}

}  // namespace pnr::mesh
