#include "mesh/io.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <unordered_map>

#include "mesh/build.hpp"
#include "util/assert.hpp"
#include "util/log.hpp"

namespace pnr::mesh {

namespace {

/// Hard cap on header counts, keeping every index within VertIdx/ElemIdx
/// and every `count * per` product within std::size_t.
constexpr long long kMaxFileEntities = 1LL << 30;

/// Bytes in the file, or -1 on failure; leaves the stream at the start.
/// Every data line occupies at least one byte, so a header count larger
/// than the file itself is hostile or corrupt — checking this BEFORE
/// allocating bounds memory use to a small multiple of the actual file
/// size, instead of letting a 20-byte file demand gigabytes.
long long stream_bytes(std::ifstream& f) {
  f.seekg(0, std::ios::end);
  const auto size = static_cast<long long>(f.tellg());
  f.seekg(0, std::ios::beg);
  return f ? size : -1;
}

/// Tokenizer that skips blank lines and '#' comments.
class LineReader {
 public:
  explicit LineReader(std::istream& in) : in_(in) {}

  /// Next non-empty, non-comment line split into a token stream.
  bool next(std::istringstream& out) {
    std::string line;
    while (std::getline(in_, line)) {
      const auto hash = line.find('#');
      if (hash != std::string::npos) line.erase(hash);
      std::istringstream probe(line);
      std::string tok;
      if (probe >> tok) {
        out = std::istringstream(line);
        return true;
      }
    }
    return false;
  }

 private:
  std::istream& in_;
};

struct NodeData {
  std::vector<double> coords;  ///< row-major n×dim
  int dim = 0;
  long long first_index = 0;
};

std::optional<NodeData> read_nodes(const std::string& path) {
  std::ifstream f(path);
  if (!f) {
    PNR_LOG_WARN << "cannot open " << path;
    return std::nullopt;
  }
  const long long file_bytes = stream_bytes(f);
  LineReader reader(f);
  std::istringstream header;
  if (!reader.next(header)) return std::nullopt;
  long long count = 0;
  int dim = 0, attrs = 0, markers = 0;
  header >> count >> dim >> attrs >> markers;
  if (count <= 0 || (dim != 2 && dim != 3)) return std::nullopt;
  if (count > kMaxFileEntities || file_bytes < 0 || count > file_bytes) {
    PNR_LOG_WARN << path << ": implausible node count " << count;
    return std::nullopt;
  }

  NodeData data;
  data.dim = dim;
  data.coords.resize(static_cast<std::size_t>(count) * dim);
  std::vector<bool> seen(static_cast<std::size_t>(count), false);
  for (long long i = 0; i < count; ++i) {
    std::istringstream line;
    if (!reader.next(line)) return std::nullopt;
    long long id = 0;
    if (!(line >> id)) return std::nullopt;
    if (i == 0) data.first_index = id;
    const long long slot = id - data.first_index;
    if (slot < 0 || slot >= count) return std::nullopt;
    // A duplicate id would silently leave some other slot zero-filled.
    if (seen[static_cast<std::size_t>(slot)]) return std::nullopt;
    seen[static_cast<std::size_t>(slot)] = true;
    for (int d = 0; d < dim; ++d) {
      double v;
      if (!(line >> v)) return std::nullopt;
      data.coords[static_cast<std::size_t>(slot) * dim + d] = v;
    }
  }
  return data;
}

struct EleData {
  std::vector<VertIdx> verts;  ///< row-major n×nodes_per_elem
  int nodes_per_elem = 0;
};

std::optional<EleData> read_elements(const std::string& path,
                                     long long node_first_index,
                                     long long num_nodes) {
  std::ifstream f(path);
  if (!f) {
    PNR_LOG_WARN << "cannot open " << path;
    return std::nullopt;
  }
  const long long file_bytes = stream_bytes(f);
  LineReader reader(f);
  std::istringstream header;
  if (!reader.next(header)) return std::nullopt;
  long long count = 0;
  int per = 0, attrs = 0;
  header >> count >> per >> attrs;
  if (count <= 0 || (per != 3 && per != 4)) return std::nullopt;
  if (count > kMaxFileEntities || file_bytes < 0 || count > file_bytes) {
    PNR_LOG_WARN << path << ": implausible element count " << count;
    return std::nullopt;
  }

  EleData data;
  data.nodes_per_elem = per;
  data.verts.resize(static_cast<std::size_t>(count) * per);
  for (long long i = 0; i < count; ++i) {
    std::istringstream line;
    if (!reader.next(line)) return std::nullopt;
    long long id = 0;
    if (!(line >> id)) return std::nullopt;
    for (int k = 0; k < per; ++k) {
      long long v;
      if (!(line >> v)) return std::nullopt;
      const long long local = v - node_first_index;
      if (local < 0 || local >= num_nodes) return std::nullopt;
      data.verts[static_cast<std::size_t>(i) * per + k] =
          static_cast<VertIdx>(local);
    }
  }
  return data;
}

template <typename Mesh, typename WriteElem>
bool write_triangle_impl(const Mesh& mesh, const std::string& basename,
                         int dim, int per, WriteElem&& write_elem) {
  const auto elems = mesh.leaf_elements();
  // Dense-number the alive vertices.
  std::vector<std::int64_t> vert_id(mesh.vertex_slots(), -1);
  std::int64_t next = 1;  // Triangle files are conventionally 1-based
  std::ofstream node_f(basename + ".node");
  if (!node_f) return false;
  std::ostringstream node_body;
  for (std::size_t v = 0; v < mesh.vertex_slots(); ++v)
    if (mesh.vertex_alive(static_cast<VertIdx>(v))) {
      vert_id[v] = next++;
      const auto& p = mesh.vertex(static_cast<VertIdx>(v));
      node_body << vert_id[v] << ' ' << p.x << ' ' << p.y;
      if constexpr (std::is_same_v<Mesh, TetMesh>) node_body << ' ' << p.z;
      node_body << '\n';
    }
  node_f << (next - 1) << ' ' << dim << " 0 0\n" << node_body.str();
  if (!node_f) return false;

  std::ofstream ele_f(basename + ".ele");
  if (!ele_f) return false;
  ele_f << elems.size() << ' ' << per << " 0\n";
  for (std::size_t i = 0; i < elems.size(); ++i) {
    ele_f << (i + 1);
    write_elem(ele_f, elems[i], vert_id);
    ele_f << '\n';
  }
  return static_cast<bool>(ele_f);
}

template <typename Mesh>
bool write_vtk_impl(const Mesh& mesh, const std::vector<ElemIdx>& elems,
                    const std::vector<part::PartId>& assign,
                    const std::string& path, int per, int cell_type) {
  PNR_REQUIRE(assign.empty() || assign.size() == elems.size());
  std::ofstream f(path);
  if (!f) return false;

  std::vector<std::int64_t> vert_id(mesh.vertex_slots(), -1);
  std::int64_t count = 0;
  std::ostringstream points;
  for (std::size_t v = 0; v < mesh.vertex_slots(); ++v)
    if (mesh.vertex_alive(static_cast<VertIdx>(v))) {
      vert_id[v] = count++;
      const auto& p = mesh.vertex(static_cast<VertIdx>(v));
      points << p.x << ' ' << p.y << ' ';
      if constexpr (std::is_same_v<Mesh, TetMesh>) points << p.z;
      else points << 0.0;
      points << '\n';
    }

  f << "# vtk DataFile Version 3.0\npnr adaptive mesh\nASCII\n"
    << "DATASET UNSTRUCTURED_GRID\nPOINTS " << count << " double\n"
    << points.str();
  f << "CELLS " << elems.size() << ' ' << elems.size() * (per + 1) << '\n';
  for (const ElemIdx e : elems) {
    f << per;
    const auto& t = [&] {
      if constexpr (std::is_same_v<Mesh, TetMesh>) return mesh.tet(e);
      else return mesh.tri(e);
    }();
    for (int k = 0; k < per; ++k)
      f << ' ' << vert_id[static_cast<std::size_t>(t.v[static_cast<std::size_t>(k)])];
    f << '\n';
  }
  f << "CELL_TYPES " << elems.size() << '\n';
  for (std::size_t i = 0; i < elems.size(); ++i) f << cell_type << '\n';
  if (!assign.empty()) {
    f << "CELL_DATA " << elems.size()
      << "\nSCALARS partition int 1\nLOOKUP_TABLE default\n";
    for (const part::PartId p : assign) f << p << '\n';
  }
  return static_cast<bool>(f);
}

}  // namespace

bool write_triangle_files(const TriMesh& mesh, const std::string& basename) {
  return write_triangle_impl(
      mesh, basename, 2, 3,
      [&](std::ostream& os, ElemIdx e, const std::vector<std::int64_t>& id) {
        for (const VertIdx v : mesh.tri(e).v)
          os << ' ' << id[static_cast<std::size_t>(v)];
      });
}

bool write_triangle_files(const TetMesh& mesh, const std::string& basename) {
  return write_triangle_impl(
      mesh, basename, 3, 4,
      [&](std::ostream& os, ElemIdx e, const std::vector<std::int64_t>& id) {
        for (const VertIdx v : mesh.tet(e).v)
          os << ' ' << id[static_cast<std::size_t>(v)];
      });
}

std::optional<TriMesh> read_triangle_files(const std::string& basename) {
  const auto nodes = read_nodes(basename + ".node");
  if (!nodes || nodes->dim != 2) return std::nullopt;
  const auto num_nodes =
      static_cast<long long>(nodes->coords.size()) / nodes->dim;
  const auto eles =
      read_elements(basename + ".ele", nodes->first_index, num_nodes);
  if (!eles || eles->nodes_per_elem != 3) return std::nullopt;

  // The validating builder rejects (instead of aborting on) degenerate,
  // non-manifold, or non-finite geometry a hostile file can encode.
  std::string why;
  auto mesh = try_build_tri_mesh(nodes->coords, eles->verts, &why);
  if (!mesh) PNR_LOG_WARN << basename << ": rejected mesh: " << why;
  return mesh;
}

std::optional<TetMesh> read_tetgen_files(const std::string& basename) {
  const auto nodes = read_nodes(basename + ".node");
  if (!nodes || nodes->dim != 3) return std::nullopt;
  const auto num_nodes =
      static_cast<long long>(nodes->coords.size()) / nodes->dim;
  const auto eles =
      read_elements(basename + ".ele", nodes->first_index, num_nodes);
  if (!eles || eles->nodes_per_elem != 4) return std::nullopt;

  std::string why;
  auto mesh = try_build_tet_mesh(nodes->coords, eles->verts, &why);
  if (!mesh) PNR_LOG_WARN << basename << ": rejected mesh: " << why;
  return mesh;
}

bool write_vtk(const TriMesh& mesh, const std::vector<ElemIdx>& elems,
               const std::vector<part::PartId>& assign,
               const std::string& path) {
  return write_vtk_impl(mesh, elems, assign, path, 3, /*VTK_TRIANGLE=*/5);
}

bool write_vtk(const TetMesh& mesh, const std::vector<ElemIdx>& elems,
               const std::vector<part::PartId>& assign,
               const std::string& path) {
  return write_vtk_impl(mesh, elems, assign, path, 4, /*VTK_TETRA=*/10);
}

}  // namespace pnr::mesh
