#pragma once
// Three-dimensional unstructured tetrahedral mesh with Rivara-style
// longest-edge bisection (paper reference [11]): a tetrahedron is bisected
// by inserting a triangle between the midpoint of its longest edge and the
// two vertices not on that edge. Conformity requires every leaf tet sharing
// the split edge to be bisected by it, which the refiner enforces by
// recursively refining any incident tet whose own longest edge differs.
// The refinement-history forest and coarse-ancestor bookkeeping mirror the
// 2D mesh.

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "mesh/types.hpp"

namespace pnr::mesh {

struct DualWeightDelta;  // mesh/dual.hpp

class TetMesh {
 public:
  struct Tet {
    std::array<VertIdx, 4> v{kNoVert, kNoVert, kNoVert, kNoVert};
    ElemIdx parent = kNoElem;
    std::array<ElemIdx, 2> child{kNoElem, kNoElem};
    VertIdx mid = kNoVert;
    ElemIdx coarse = kNoElem;
    /// Inherited user payload (see TriMesh::Tri::tag).
    std::int32_t tag = -1;
    std::int16_t level = 0;
    bool leaf = false;
    bool alive = false;
  };

  // ---- construction -------------------------------------------------------

  VertIdx add_vertex(double x, double y, double z);
  ElemIdx add_tet(VertIdx a, VertIdx b, VertIdx c, VertIdx d);
  void finalize();

  // ---- queries --------------------------------------------------------------

  ElemIdx num_initial_elements() const { return num_initial_; }
  std::int64_t num_leaves() const { return num_leaves_; }
  std::int64_t num_vertices_alive() const { return num_verts_alive_; }
  std::size_t element_slots() const { return tets_.size(); }
  std::size_t vertex_slots() const { return verts_.size(); }

  const Tet& tet(ElemIdx e) const { return tets_[static_cast<std::size_t>(e)]; }
  void set_tag(ElemIdx e, std::int32_t tag) {
    tets_[static_cast<std::size_t>(e)].tag = tag;
  }
  std::int32_t tag(ElemIdx e) const {
    return tets_[static_cast<std::size_t>(e)].tag;
  }
  const Point3& vertex(VertIdx v) const {
    return verts_[static_cast<std::size_t>(v)];
  }
  bool vertex_alive(VertIdx v) const {
    return vert_alive_[static_cast<std::size_t>(v)];
  }
  bool is_leaf(ElemIdx e) const {
    return tets_[static_cast<std::size_t>(e)].alive &&
           tets_[static_cast<std::size_t>(e)].leaf;
  }

  std::vector<ElemIdx> leaf_elements() const;
  std::int64_t leaf_count(ElemIdx coarse) const {
    return leaf_count_[static_cast<std::size_t>(coarse)];
  }

  /// Current adjacent-leaf-pair count across the {c1, c2} interface; 0 when
  /// the two initial elements are not adjacent.
  std::int64_t coarse_interface_weight(ElemIdx c1, ElemIdx c2) const;

  /// Monotone counter bumped by every refine/coarsen call that changed the
  /// mesh (see TriMesh::adapt_version).
  std::uint64_t adapt_version() const { return adapt_version_; }

  /// Hand over the set of initial elements whose refinement trees changed
  /// since the previous drain (see DualWeightDelta in mesh/dual.hpp) and
  /// reset it.
  DualWeightDelta drain_dual_delta();

  double signed_volume(ElemIdx e) const;
  Point3 centroid(ElemIdx e) const;

  /// Visit every leaf face once: callback(a, b, c, elem1, elem2) with elem2
  /// kNoElem on the domain boundary.
  template <typename F>
  void for_each_leaf_face(F&& f) const {
    for (const auto& [key, entry] : face_map_) {
      (void)key;
      f(entry.a, entry.b, entry.c, entry.elems[0], entry.elems[1]);
    }
  }

  std::vector<char> boundary_vertex_mask() const;

  /// Visit every adjacent pair of initial elements with the current number
  /// of adjacent leaf pairs across their interface (incrementally
  /// maintained — the paper's P1 bookkeeping): callback(c1, c2, w), c1 < c2.
  template <typename F>
  void for_each_coarse_interface(F&& f) const {
    for (const auto& [key, w] : coarse_interface_) {
      if (w == 0) continue;
      f(static_cast<ElemIdx>(key & 0xffffffffull),
        static_cast<ElemIdx>(key >> 32), w);
    }
  }

  // ---- adaptation -----------------------------------------------------------

  std::int64_t refine(const std::vector<ElemIdx>& marked);
  std::int64_t coarsen(const std::vector<ElemIdx>& marked);

  // ---- validation -----------------------------------------------------------

  std::string check_invariants() const;

 private:
  struct FaceEntry {
    VertIdx a, b, c;
    std::array<ElemIdx, 2> elems{kNoElem, kNoElem};
  };

  VertIdx new_vertex(double x, double y, double z);
  ElemIdx new_element();
  void release_element(ElemIdx e);
  void release_vertex(VertIdx v);

  void maps_add(ElemIdx e);
  void maps_remove(ElemIdx e);

  /// Longest edge with deterministic tie-break shared by all incident tets.
  std::pair<VertIdx, VertIdx> longest_edge(ElemIdx e) const;

  void bisect(ElemIdx e, VertIdx a, VertIdx b, VertIdx m);

  /// See TriMesh::mark_dual_dirty.
  void mark_dual_dirty(ElemIdx coarse) {
    if (!dual_dirty_mark_[static_cast<std::size_t>(coarse)]) {
      dual_dirty_mark_[static_cast<std::size_t>(coarse)] = true;
      dual_dirty_.push_back(coarse);
    }
  }

  std::vector<Point3> verts_;
  std::vector<char> vert_alive_;
  std::vector<Tet> tets_;
  std::vector<ElemIdx> free_elems_;
  std::vector<VertIdx> free_verts_;
  std::vector<std::int64_t> leaf_count_;

  std::unordered_map<std::uint64_t, FaceEntry> face_map_;
  /// (lo coarse id, hi coarse id) -> adjacent leaf pairs across the
  /// interface; kept in sync by maps_add/maps_remove.
  std::unordered_map<std::uint64_t, std::int64_t> coarse_interface_;
  /// Leaf tets incident to each leaf edge (needed to gather the bisection
  /// "edge star" during refinement).
  std::unordered_map<std::uint64_t, std::vector<ElemIdx>> edge_tets_;

  /// Dirty set for DualWeightDelta (see TriMesh).
  std::vector<char> dual_dirty_mark_;
  std::vector<ElemIdx> dual_dirty_;
  std::uint64_t dual_drains_ = 0;
  std::uint64_t adapt_version_ = 0;

  ElemIdx num_initial_ = 0;
  std::int64_t num_leaves_ = 0;
  std::int64_t num_verts_alive_ = 0;
  bool finalized_ = false;
};

}  // namespace pnr::mesh
