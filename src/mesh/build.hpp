#pragma once
// Validating mesh constructors for untrusted input.
//
// TriMesh/TetMesh assembly PNR_REQUIREs that its input is sane — distinct
// corners, nonzero measure, at most two elements per edge/face. That is the
// right contract for programmatic builders, but fatal for bytes that came
// from a file or a network frame: a hostile .ele line or CSR payload must
// not abort the process. These front ends pre-check everything the
// constructors' REQUIREs assume and return nullopt (with a reason) instead,
// so the file readers (mesh/io) and the wire codec (svc/codec) can reject
// malformed meshes gracefully.

#include <optional>
#include <span>
#include <string>

#include "mesh/tet_mesh.hpp"
#include "mesh/tri_mesh.hpp"

namespace pnr::mesh {

/// Largest coordinate magnitude accepted from untrusted sources. Bounding
/// |x| keeps every downstream area/volume determinant finite (no inf − inf
/// NaN), which is what the constructors' orientation checks assume.
inline constexpr double kMaxCoordMagnitude = 1e100;

/// Build a finalized 0-level 2D mesh from row-major vertex coordinates
/// (n×2) and triangle corners (count×3). Never aborts: wrong shapes,
/// non-finite or absurd coordinates, out-of-range indices, repeated
/// corners, zero-area triangles, and non-manifold edges all yield nullopt,
/// with the reason written to `why` when given.
std::optional<TriMesh> try_build_tri_mesh(std::span<const double> coords,
                                          std::span<const VertIdx> elems,
                                          std::string* why = nullptr);

/// 3D counterpart (coordinates n×3, tetrahedron corners count×4).
/// Additionally requires n < 2^21: face keys pack three vertex ids into 21
/// bits each, beyond which the manifold pre-check (and the mesh's own face
/// map) would alias.
std::optional<TetMesh> try_build_tet_mesh(std::span<const double> coords,
                                          std::span<const VertIdx> elems,
                                          std::string* why = nullptr);

}  // namespace pnr::mesh
