#include "mesh/tet_mesh.hpp"

#include <algorithm>
#include <cmath>

#include "check/level.hpp"
#include "mesh/dual.hpp"
#include "util/assert.hpp"

namespace pnr::mesh {

namespace {
constexpr std::array<std::array<int, 2>, 6> kTetEdges{{
    {0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}};
// Face i is opposite vertex i.
constexpr std::array<std::array<int, 3>, 4> kTetFaces{{
    {1, 2, 3}, {0, 2, 3}, {0, 1, 3}, {0, 1, 2}}};
}  // namespace

// ---- construction ----------------------------------------------------------

VertIdx TetMesh::add_vertex(double x, double y, double z) {
  PNR_REQUIRE_MSG(!finalized_, "add_vertex after finalize");
  return new_vertex(x, y, z);
}

ElemIdx TetMesh::add_tet(VertIdx a, VertIdx b, VertIdx c, VertIdx d) {
  PNR_REQUIRE_MSG(!finalized_, "add_tet after finalize");
  const ElemIdx e = new_element();
  Tet& t = tets_[static_cast<std::size_t>(e)];
  t.v = {a, b, c, d};
  t.leaf = true;
  t.coarse = e;
  return e;
}

void TetMesh::finalize() {
  PNR_REQUIRE_MSG(!finalized_, "finalize called twice");
  PNR_REQUIRE_MSG(!tets_.empty(), "empty mesh");
  num_initial_ = static_cast<ElemIdx>(tets_.size());
  leaf_count_.assign(static_cast<std::size_t>(num_initial_), 1);
  dual_dirty_mark_.assign(static_cast<std::size_t>(num_initial_), false);
  num_leaves_ = num_initial_;

  for (ElemIdx e = 0; e < num_initial_; ++e) {
    Tet& t = tets_[static_cast<std::size_t>(e)];
    if (signed_volume(e) < 0.0) std::swap(t.v[2], t.v[3]);
    PNR_REQUIRE_MSG(signed_volume(e) > 0.0, "degenerate initial tetrahedron");
    maps_add(e);
  }
  finalized_ = true;
}

// ---- slot management --------------------------------------------------------

VertIdx TetMesh::new_vertex(double x, double y, double z) {
  ++num_verts_alive_;
  if (!free_verts_.empty()) {
    const VertIdx v = free_verts_.back();
    free_verts_.pop_back();
    verts_[static_cast<std::size_t>(v)] = {x, y, z};
    vert_alive_[static_cast<std::size_t>(v)] = true;
    return v;
  }
  verts_.push_back({x, y, z});
  vert_alive_.push_back(true);
  return static_cast<VertIdx>(verts_.size() - 1);
}

ElemIdx TetMesh::new_element() {
  if (!free_elems_.empty()) {
    const ElemIdx e = free_elems_.back();
    free_elems_.pop_back();
    tets_[static_cast<std::size_t>(e)] = Tet{};
    tets_[static_cast<std::size_t>(e)].alive = true;
    return e;
  }
  tets_.emplace_back();
  tets_.back().alive = true;
  return static_cast<ElemIdx>(tets_.size() - 1);
}

void TetMesh::release_element(ElemIdx e) {
  tets_[static_cast<std::size_t>(e)] = Tet{};
  free_elems_.push_back(e);
}

void TetMesh::release_vertex(VertIdx v) {
  vert_alive_[static_cast<std::size_t>(v)] = false;
  free_verts_.push_back(v);
  --num_verts_alive_;
}

// ---- geometry ---------------------------------------------------------------

double TetMesh::signed_volume(ElemIdx e) const {
  const Tet& t = tets_[static_cast<std::size_t>(e)];
  const Point3& p0 = verts_[static_cast<std::size_t>(t.v[0])];
  const Point3& p1 = verts_[static_cast<std::size_t>(t.v[1])];
  const Point3& p2 = verts_[static_cast<std::size_t>(t.v[2])];
  const Point3& p3 = verts_[static_cast<std::size_t>(t.v[3])];
  const double ax = p1.x - p0.x, ay = p1.y - p0.y, az = p1.z - p0.z;
  const double bx = p2.x - p0.x, by = p2.y - p0.y, bz = p2.z - p0.z;
  const double cx = p3.x - p0.x, cy = p3.y - p0.y, cz = p3.z - p0.z;
  return (ax * (by * cz - bz * cy) - ay * (bx * cz - bz * cx) +
          az * (bx * cy - by * cx)) /
         6.0;
}

Point3 TetMesh::centroid(ElemIdx e) const {
  const Tet& t = tets_[static_cast<std::size_t>(e)];
  Point3 c;
  for (const VertIdx v : t.v) {
    const Point3& p = verts_[static_cast<std::size_t>(v)];
    c.x += p.x;
    c.y += p.y;
    c.z += p.z;
  }
  c.x /= 4.0;
  c.y /= 4.0;
  c.z /= 4.0;
  return c;
}

std::pair<VertIdx, VertIdx> TetMesh::longest_edge(ElemIdx e) const {
  const Tet& t = tets_[static_cast<std::size_t>(e)];
  double best_len = -1.0;
  std::uint64_t best_key = 0;
  std::pair<VertIdx, VertIdx> best{kNoVert, kNoVert};
  for (const auto& edge : kTetEdges) {
    const VertIdx a = t.v[static_cast<std::size_t>(edge[0])];
    const VertIdx b = t.v[static_cast<std::size_t>(edge[1])];
    const Point3& pa = verts_[static_cast<std::size_t>(a)];
    const Point3& pb = verts_[static_cast<std::size_t>(b)];
    const double len = (pa.x - pb.x) * (pa.x - pb.x) +
                       (pa.y - pb.y) * (pa.y - pb.y) +
                       (pa.z - pb.z) * (pa.z - pb.z);
    const std::uint64_t key = edge_key(a, b);
    // Ties resolved by the larger canonical key so every incident tet picks
    // the same edge — this is what makes the propagation terminate.
    if (len > best_len || (len == best_len && key > best_key)) {
      best_len = len;
      best_key = key;
      best = {a, b};
    }
  }
  return best;
}

// ---- incidence maps ---------------------------------------------------------

void TetMesh::maps_add(ElemIdx e) {
  const Tet& t = tets_[static_cast<std::size_t>(e)];
  for (const auto& face : kTetFaces) {
    const VertIdx a = t.v[static_cast<std::size_t>(face[0])];
    const VertIdx b = t.v[static_cast<std::size_t>(face[1])];
    const VertIdx c = t.v[static_cast<std::size_t>(face[2])];
    auto [it, inserted] = face_map_.try_emplace(
        face_key(a, b, c), FaceEntry{a, b, c, {e, kNoElem}});
    if (!inserted) {
      PNR_REQUIRE_MSG(it->second.elems[1] == kNoElem,
                      "non-manifold face: more than two tetrahedra");
      it->second.elems[1] = e;
      const ElemIdx c1 =
          tets_[static_cast<std::size_t>(it->second.elems[0])].coarse;
      const ElemIdx c2 = t.coarse;
      if (c1 != c2)
        ++coarse_interface_[edge_key(std::min(c1, c2), std::max(c1, c2))];
    }
  }
  for (const auto& edge : kTetEdges) {
    const VertIdx a = t.v[static_cast<std::size_t>(edge[0])];
    const VertIdx b = t.v[static_cast<std::size_t>(edge[1])];
    edge_tets_[edge_key(a, b)].push_back(e);
  }
}

void TetMesh::maps_remove(ElemIdx e) {
  const Tet& t = tets_[static_cast<std::size_t>(e)];
  for (const auto& face : kTetFaces) {
    const VertIdx a = t.v[static_cast<std::size_t>(face[0])];
    const VertIdx b = t.v[static_cast<std::size_t>(face[1])];
    const VertIdx c = t.v[static_cast<std::size_t>(face[2])];
    auto it = face_map_.find(face_key(a, b, c));
    PNR_REQUIRE(it != face_map_.end());
    if (it->second.elems[1] != kNoElem) {
      const ElemIdx c1 =
          tets_[static_cast<std::size_t>(it->second.elems[0])].coarse;
      const ElemIdx c2 =
          tets_[static_cast<std::size_t>(it->second.elems[1])].coarse;
      if (c1 != c2) {
        auto w = coarse_interface_.find(
            edge_key(std::min(c1, c2), std::max(c1, c2)));
        PNR_ASSERT(w != coarse_interface_.end() && w->second > 0);
        if (--w->second == 0) coarse_interface_.erase(w);
      }
    }
    if (it->second.elems[0] == e) it->second.elems[0] = it->second.elems[1];
    else PNR_REQUIRE(it->second.elems[1] == e);
    it->second.elems[1] = kNoElem;
    if (it->second.elems[0] == kNoElem) face_map_.erase(it);
  }
  for (const auto& edge : kTetEdges) {
    const VertIdx a = t.v[static_cast<std::size_t>(edge[0])];
    const VertIdx b = t.v[static_cast<std::size_t>(edge[1])];
    auto it = edge_tets_.find(edge_key(a, b));
    PNR_REQUIRE(it != edge_tets_.end());
    auto& vec = it->second;
    const auto pos = std::find(vec.begin(), vec.end(), e);
    PNR_REQUIRE(pos != vec.end());
    vec.erase(pos);
    if (vec.empty()) edge_tets_.erase(it);
  }
}

std::vector<ElemIdx> TetMesh::leaf_elements() const {
  std::vector<ElemIdx> leaves;
  leaves.reserve(static_cast<std::size_t>(num_leaves_));
  for (std::size_t e = 0; e < tets_.size(); ++e)
    if (tets_[e].alive && tets_[e].leaf)
      leaves.push_back(static_cast<ElemIdx>(e));
  return leaves;
}

std::vector<char> TetMesh::boundary_vertex_mask() const {
  std::vector<char> mask(verts_.size(), false);
  for (const auto& [key, entry] : face_map_) {
    (void)key;
    if (entry.elems[1] == kNoElem) {
      mask[static_cast<std::size_t>(entry.a)] = true;
      mask[static_cast<std::size_t>(entry.b)] = true;
      mask[static_cast<std::size_t>(entry.c)] = true;
    }
  }
  return mask;
}

// ---- refinement -------------------------------------------------------------

void TetMesh::bisect(ElemIdx e, VertIdx a, VertIdx b, VertIdx m) {
  PNR_ASSERT(is_leaf(e));
  maps_remove(e);

  const ElemIdx c0 = new_element();
  const ElemIdx c1 = new_element();
  Tet& parent = tets_[static_cast<std::size_t>(e)];
  Tet& t0 = tets_[static_cast<std::size_t>(c0)];
  Tet& t1 = tets_[static_cast<std::size_t>(c1)];

  // Child 0 replaces b with m, child 1 replaces a with m; substituting one
  // endpoint of an edge by its midpoint preserves orientation and halves
  // the volume.
  t0.v = parent.v;
  t1.v = parent.v;
  for (int k = 0; k < 4; ++k) {
    if (t0.v[static_cast<std::size_t>(k)] == b)
      t0.v[static_cast<std::size_t>(k)] = m;
    if (t1.v[static_cast<std::size_t>(k)] == a)
      t1.v[static_cast<std::size_t>(k)] = m;
  }
  for (Tet* child : {&t0, &t1}) {
    child->parent = e;
    child->coarse = parent.coarse;
    child->tag = parent.tag;
    child->level = static_cast<std::int16_t>(parent.level + 1);
    child->leaf = true;
  }
  parent.leaf = false;
  parent.child = {c0, c1};
  parent.mid = m;

  maps_add(c0);
  maps_add(c1);

  ++num_leaves_;
  ++leaf_count_[static_cast<std::size_t>(parent.coarse)];
  mark_dual_dirty(parent.coarse);
}

std::int64_t TetMesh::refine(const std::vector<ElemIdx>& marked) {
  PNR_REQUIRE_MSG(finalized_, "refine before finalize");
  std::vector<ElemIdx> stack;
  stack.reserve(marked.size());
  for (ElemIdx e : marked)
    if (is_leaf(e)) stack.push_back(e);

  std::int64_t bisections = 0;
  std::int64_t guard = 256 * (num_leaves_ + 16) +
                       4096 * static_cast<std::int64_t>(stack.size());
  std::vector<ElemIdx> star;
  while (!stack.empty()) {
    PNR_REQUIRE_MSG(--guard > 0, "refinement propagation failed to terminate");
    const ElemIdx t = stack.back();
    if (!is_leaf(t)) {
      stack.pop_back();
      continue;
    }
    const auto [a, b] = longest_edge(t);
    const std::uint64_t key = edge_key(a, b);

    // Every leaf tet around the edge must agree that this is its longest
    // edge; otherwise refine the disagreeing tets first (Rivara 3D).
    const auto it = edge_tets_.find(key);
    PNR_ASSERT(it != edge_tets_.end());
    star.assign(it->second.begin(), it->second.end());
    bool compatible = true;
    for (const ElemIdx s : star) {
      const auto [sa, sb] = longest_edge(s);
      if (edge_key(sa, sb) != key) {
        stack.push_back(s);
        compatible = false;
      }
    }
    if (!compatible) continue;

    const Point3& pa = verts_[static_cast<std::size_t>(a)];
    const Point3& pb = verts_[static_cast<std::size_t>(b)];
    const double mx = 0.5 * (pa.x + pb.x);
    const double my = 0.5 * (pa.y + pb.y);
    const double mz = 0.5 * (pa.z + pb.z);
    const VertIdx m = new_vertex(mx, my, mz);
    for (const ElemIdx s : star) {
      bisect(s, a, b, m);
      ++bisections;
    }
    stack.pop_back();
  }
  if (bisections > 0) ++adapt_version_;
  PNR_CHECK2_AUDIT("TetMesh::refine", check_invariants());
  return bisections;
}

// ---- coarsening -------------------------------------------------------------

std::int64_t TetMesh::coarsen(const std::vector<ElemIdx>& marked) {
  PNR_REQUIRE_MSG(finalized_, "coarsen before finalize");
  std::vector<char> want(tets_.size(), false);
  for (ElemIdx e : marked)
    if (is_leaf(e)) want[static_cast<std::size_t>(e)] = true;

  std::unordered_map<VertIdx, std::vector<ElemIdx>> by_mid;
  for (std::size_t e = 0; e < tets_.size(); ++e) {
    const Tet& t = tets_[e];
    if (!t.alive || t.leaf) continue;
    const ElemIdx c0 = t.child[0];
    const ElemIdx c1 = t.child[1];
    if (is_leaf(c0) && is_leaf(c1) && want[static_cast<std::size_t>(c0)] &&
        want[static_cast<std::size_t>(c1)])
      by_mid[t.mid].push_back(static_cast<ElemIdx>(e));
  }
  if (by_mid.empty()) return 0;

  std::vector<std::int32_t> touches(verts_.size(), 0);
  for (std::size_t e = 0; e < tets_.size(); ++e) {
    const Tet& t = tets_[e];
    if (!t.alive || !t.leaf) continue;
    for (const VertIdx v : t.v) ++touches[static_cast<std::size_t>(v)];
  }

  std::vector<VertIdx> mids;
  mids.reserve(by_mid.size());
  for (const auto& [m, parents] : by_mid) {
    (void)parents;
    mids.push_back(m);
  }
  std::sort(mids.begin(), mids.end());

  std::int64_t merges = 0;
  for (const VertIdx m : mids) {
    const auto& parents = by_mid[m];
    // The midpoint vanishes only if its entire leaf star is the children of
    // the candidate parents (2 leaves per parent).
    if (touches[static_cast<std::size_t>(m)] !=
        2 * static_cast<std::int32_t>(parents.size()))
      continue;
    for (const ElemIdx p : parents) {
      Tet& parent = tets_[static_cast<std::size_t>(p)];
      parent.tag = tets_[static_cast<std::size_t>(parent.child[0])].tag;
      maps_remove(parent.child[0]);
      maps_remove(parent.child[1]);
      release_element(parent.child[0]);
      release_element(parent.child[1]);
      parent.child = {kNoElem, kNoElem};
      parent.mid = kNoVert;
      parent.leaf = true;
      maps_add(p);
      --num_leaves_;
      --leaf_count_[static_cast<std::size_t>(parent.coarse)];
      mark_dual_dirty(parent.coarse);
      ++merges;
    }
    release_vertex(m);
  }
  if (merges > 0) ++adapt_version_;
  PNR_CHECK2_AUDIT("TetMesh::coarsen", check_invariants());
  return merges;
}

// ---- dual-delta bookkeeping -------------------------------------------------

std::int64_t TetMesh::coarse_interface_weight(ElemIdx c1, ElemIdx c2) const {
  const auto it = coarse_interface_.find(edge_key(c1, c2));
  return it == coarse_interface_.end() ? 0 : it->second;
}

DualWeightDelta TetMesh::drain_dual_delta() {
  DualWeightDelta delta;
  delta.prev_epoch = dual_drains_;
  delta.epoch = ++dual_drains_;
  delta.vertices = std::move(dual_dirty_);
  dual_dirty_.clear();
  std::sort(delta.vertices.begin(), delta.vertices.end());
  for (const ElemIdx c : delta.vertices)
    dual_dirty_mark_[static_cast<std::size_t>(c)] = false;
  return delta;
}

// ---- validation -------------------------------------------------------------

std::string TetMesh::check_invariants() const {
  if (!finalized_) return "not finalized";
  std::int64_t leaves = 0;
  std::vector<std::int64_t> leaf_count(leaf_count_.size(), 0);

  for (std::size_t e = 0; e < tets_.size(); ++e) {
    const Tet& t = tets_[e];
    if (!t.alive) continue;
    if (t.leaf) {
      ++leaves;
      if (t.coarse < 0 || t.coarse >= num_initial_) return "bad coarse id";
      ++leaf_count[static_cast<std::size_t>(t.coarse)];
      if (signed_volume(static_cast<ElemIdx>(e)) <= 0.0)
        return "non-positive leaf volume";
      for (const VertIdx v : t.v)
        if (!vert_alive_[static_cast<std::size_t>(v)])
          return "leaf references dead vertex";
    } else {
      if (t.child[0] == kNoElem || t.child[1] == kNoElem)
        return "interior node missing children";
      for (const ElemIdx c : t.child) {
        const Tet& ct = tets_[static_cast<std::size_t>(c)];
        if (!ct.alive) return "child slot dead";
        if (ct.parent != static_cast<ElemIdx>(e))
          return "child parent link broken";
        if (ct.level != t.level + 1) return "child level wrong";
        if (ct.coarse != t.coarse) return "child coarse ancestor wrong";
      }
      if (t.mid == kNoVert) return "interior node missing midpoint";
      if (!vert_alive_[static_cast<std::size_t>(t.mid)])
        return "midpoint vertex dead";
    }
  }
  if (leaves != num_leaves_) return "leaf count cache wrong";
  for (std::size_t c = 0; c < leaf_count.size(); ++c)
    if (leaf_count[c] != leaf_count_[c]) return "per-coarse leaf count wrong";

  // Faces: each face of a leaf occurs in at most two leaves, and the face
  // map reflects exactly the leaf faces (conformity in 3D means no face of
  // one leaf is a strict sub-face of another's, which would make the counts
  // disagree).
  std::unordered_map<std::uint64_t, std::int32_t> expected;
  for (std::size_t e = 0; e < tets_.size(); ++e) {
    const Tet& t = tets_[e];
    if (!t.alive || !t.leaf) continue;
    for (const auto& face : kTetFaces)
      ++expected[face_key(t.v[static_cast<std::size_t>(face[0])],
                          t.v[static_cast<std::size_t>(face[1])],
                          t.v[static_cast<std::size_t>(face[2])])];
  }
  if (expected.size() != face_map_.size()) return "face map size mismatch";
  for (const auto& [key, count] : expected) {
    const auto it = face_map_.find(key);
    if (it == face_map_.end()) return "face missing from map";
    const int have =
        (it->second.elems[0] != kNoElem) + (it->second.elems[1] != kNoElem);
    if (have != count) return "face incidence mismatch";
    if (count > 2) return "non-manifold face";
  }

  // Edge incidence map consistency.
  std::unordered_map<std::uint64_t, std::int32_t> expected_edges;
  for (std::size_t e = 0; e < tets_.size(); ++e) {
    const Tet& t = tets_[e];
    if (!t.alive || !t.leaf) continue;
    for (const auto& edge : kTetEdges)
      ++expected_edges[edge_key(t.v[static_cast<std::size_t>(edge[0])],
                                t.v[static_cast<std::size_t>(edge[1])])];
  }
  if (expected_edges.size() != edge_tets_.size())
    return "edge incidence size mismatch";
  for (const auto& [key, count] : expected_edges) {
    const auto it = edge_tets_.find(key);
    if (it == edge_tets_.end()) return "edge missing from incidence map";
    if (static_cast<std::int32_t>(it->second.size()) != count)
      return "edge incidence count mismatch";
  }

  // Incrementally maintained coarse-interface weights vs a recount.
  std::unordered_map<std::uint64_t, std::int64_t> recount;
  for (const auto& [key, entry] : face_map_) {
    (void)key;
    if (entry.elems[1] == kNoElem) continue;
    const ElemIdx c1 = tets_[static_cast<std::size_t>(entry.elems[0])].coarse;
    const ElemIdx c2 = tets_[static_cast<std::size_t>(entry.elems[1])].coarse;
    if (c1 != c2) ++recount[edge_key(std::min(c1, c2), std::max(c1, c2))];
  }
  if (recount.size() != coarse_interface_.size())
    return "coarse interface map size mismatch";
  for (const auto& [key, w] : recount) {
    const auto it = coarse_interface_.find(key);
    if (it == coarse_interface_.end() || it->second != w)
      return "coarse interface weight mismatch";
  }
  return {};
}

}  // namespace pnr::mesh
