#include "mesh/build.hpp"

#include <cmath>
#include <cstdint>
#include <unordered_map>

namespace pnr::mesh {

namespace {

void fail(std::string* why, const char* reason) {
  if (why) *why = reason;
}

bool coords_ok(std::span<const double> coords) {
  for (const double x : coords)
    if (!std::isfinite(x) || std::fabs(x) > kMaxCoordMagnitude) return false;
  return true;
}

bool indices_ok(std::span<const VertIdx> elems, std::int64_t n) {
  for (const VertIdx v : elems)
    if (v < 0 || v >= n) return false;
  return true;
}

}  // namespace

std::optional<TriMesh> try_build_tri_mesh(std::span<const double> coords,
                                          std::span<const VertIdx> elems,
                                          std::string* why) {
  if (coords.empty() || coords.size() % 2 || elems.empty() ||
      elems.size() % 3) {
    fail(why, "mesh arrays have the wrong shape for 2D");
    return std::nullopt;
  }
  const auto n = static_cast<std::int64_t>(coords.size()) / 2;
  const std::size_t count = elems.size() / 3;
  if (!coords_ok(coords) || !indices_ok(elems, n)) {
    fail(why, "coordinates or element indices out of range");
    return std::nullopt;
  }
  // Pre-validate what TriMesh::finalize PNR_REQUIREs. Orientation does not
  // matter (finalize flips negative triangles); zero area does.
  std::unordered_map<std::uint64_t, int> edge_count;
  edge_count.reserve(count * 3);
  for (std::size_t e = 0; e < count; ++e) {
    const VertIdx a = elems[e * 3], b = elems[e * 3 + 1],
                  c = elems[e * 3 + 2];
    if (a == b || b == c || a == c) {
      fail(why, "repeated corner in a triangle");
      return std::nullopt;
    }
    const double ax = coords[static_cast<std::size_t>(a) * 2];
    const double ay = coords[static_cast<std::size_t>(a) * 2 + 1];
    const double bx = coords[static_cast<std::size_t>(b) * 2];
    const double by = coords[static_cast<std::size_t>(b) * 2 + 1];
    const double cx = coords[static_cast<std::size_t>(c) * 2];
    const double cy = coords[static_cast<std::size_t>(c) * 2 + 1];
    const double area = (bx - ax) * (cy - ay) - (cx - ax) * (by - ay);
    if (!(area != 0.0)) {
      fail(why, "degenerate (zero-area) triangle");
      return std::nullopt;
    }
    for (const auto& [u, v] : {std::pair{a, b}, {b, c}, {c, a}})
      if (++edge_count[edge_key(u, v)] > 2) {
        fail(why, "non-manifold edge (more than two triangles)");
        return std::nullopt;
      }
  }
  TriMesh mesh;
  for (std::int64_t v = 0; v < n; ++v)
    mesh.add_vertex(coords[static_cast<std::size_t>(v) * 2],
                    coords[static_cast<std::size_t>(v) * 2 + 1]);
  for (std::size_t e = 0; e < count; ++e)
    mesh.add_triangle(elems[e * 3], elems[e * 3 + 1], elems[e * 3 + 2]);
  mesh.finalize();
  return mesh;
}

std::optional<TetMesh> try_build_tet_mesh(std::span<const double> coords,
                                          std::span<const VertIdx> elems,
                                          std::string* why) {
  if (coords.empty() || coords.size() % 3 || elems.empty() ||
      elems.size() % 4) {
    fail(why, "mesh arrays have the wrong shape for 3D");
    return std::nullopt;
  }
  const auto n = static_cast<std::int64_t>(coords.size()) / 3;
  const std::size_t count = elems.size() / 4;
  if (n >= (1 << 21)) {
    fail(why, "3D meshes are limited to 2^21 vertices");
    return std::nullopt;
  }
  if (!coords_ok(coords) || !indices_ok(elems, n)) {
    fail(why, "coordinates or element indices out of range");
    return std::nullopt;
  }
  std::unordered_map<std::uint64_t, int> face_count;
  face_count.reserve(count * 4);
  const auto coord = [&](VertIdx v, int d) {
    return coords[static_cast<std::size_t>(v) * 3 + static_cast<std::size_t>(d)];
  };
  for (std::size_t e = 0; e < count; ++e) {
    const VertIdx v[4] = {elems[e * 4], elems[e * 4 + 1], elems[e * 4 + 2],
                          elems[e * 4 + 3]};
    for (int i = 0; i < 4; ++i)
      for (int j = i + 1; j < 4; ++j)
        if (v[i] == v[j]) {
          fail(why, "repeated corner in a tetrahedron");
          return std::nullopt;
        }
    const double d1[3] = {coord(v[1], 0) - coord(v[0], 0),
                          coord(v[1], 1) - coord(v[0], 1),
                          coord(v[1], 2) - coord(v[0], 2)};
    const double d2[3] = {coord(v[2], 0) - coord(v[0], 0),
                          coord(v[2], 1) - coord(v[0], 1),
                          coord(v[2], 2) - coord(v[0], 2)};
    const double d3[3] = {coord(v[3], 0) - coord(v[0], 0),
                          coord(v[3], 1) - coord(v[0], 1),
                          coord(v[3], 2) - coord(v[0], 2)};
    const double vol = d1[0] * (d2[1] * d3[2] - d2[2] * d3[1]) -
                       d1[1] * (d2[0] * d3[2] - d2[2] * d3[0]) +
                       d1[2] * (d2[0] * d3[1] - d2[1] * d3[0]);
    if (!(vol != 0.0) || !std::isfinite(vol)) {
      fail(why, "degenerate (zero-volume) tetrahedron");
      return std::nullopt;
    }
    for (const auto& [a, b, c] :
         {std::tuple{v[0], v[1], v[2]}, {v[0], v[1], v[3]},
          {v[0], v[2], v[3]}, {v[1], v[2], v[3]}})
      if (++face_count[face_key(a, b, c)] > 2) {
        fail(why, "non-manifold face (more than two tetrahedra)");
        return std::nullopt;
      }
  }
  TetMesh mesh;
  for (std::int64_t v = 0; v < n; ++v)
    mesh.add_vertex(coord(static_cast<VertIdx>(v), 0),
                    coord(static_cast<VertIdx>(v), 1),
                    coord(static_cast<VertIdx>(v), 2));
  for (std::size_t e = 0; e < count; ++e)
    mesh.add_tet(elems[e * 4], elems[e * 4 + 1], elems[e * 4 + 2],
                 elems[e * 4 + 3]);
  mesh.finalize();
  return mesh;
}

}  // namespace pnr::mesh
