#include "mesh/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/assert.hpp"

namespace pnr::mesh {

namespace {

/// Counts vertices touched by ≥ 2 subsets given per-leaf vertex spans.
class SharedVertexCounter {
 public:
  explicit SharedVertexCounter(std::size_t vertex_slots)
      : first_part_(vertex_slots, -2), shared_(vertex_slots, false) {}

  void touch(VertIdx v, part::PartId p) {
    auto& f = first_part_[static_cast<std::size_t>(v)];
    if (f == -2) {
      f = p;
    } else if (f != p && !shared_[static_cast<std::size_t>(v)]) {
      shared_[static_cast<std::size_t>(v)] = true;
      ++count_;
    }
  }

  std::int64_t count() const { return count_; }

 private:
  std::vector<part::PartId> first_part_;
  std::vector<char> shared_;
  std::int64_t count_ = 0;
};

}  // namespace

std::int64_t shared_vertices(const TriMesh& mesh,
                             const std::vector<ElemIdx>& elems,
                             std::span<const part::PartId> assign) {
  PNR_REQUIRE(assign.size() == elems.size());
  SharedVertexCounter counter(mesh.vertex_slots());
  for (std::size_t i = 0; i < elems.size(); ++i)
    for (const VertIdx v : mesh.tri(elems[i]).v) counter.touch(v, assign[i]);
  return counter.count();
}

std::int64_t shared_vertices(const TetMesh& mesh,
                             const std::vector<ElemIdx>& elems,
                             std::span<const part::PartId> assign) {
  PNR_REQUIRE(assign.size() == elems.size());
  SharedVertexCounter counter(mesh.vertex_slots());
  for (std::size_t i = 0; i < elems.size(); ++i)
    for (const VertIdx v : mesh.tet(elems[i]).v) counter.touch(v, assign[i]);
  return counter.count();
}

std::vector<std::int32_t> adjacent_subdomains(
    const graph::Graph& fine_dual, std::span<const part::PartId> assign,
    part::PartId num_parts) {
  PNR_REQUIRE(assign.size() ==
              static_cast<std::size_t>(fine_dual.num_vertices()));
  const auto p = static_cast<std::size_t>(num_parts);
  std::vector<char> adj(p * p, false);
  for (graph::VertexId v = 0; v < fine_dual.num_vertices(); ++v) {
    const auto pv = static_cast<std::size_t>(assign[static_cast<std::size_t>(v)]);
    for (graph::VertexId u : fine_dual.neighbors(v)) {
      const auto pu = static_cast<std::size_t>(assign[static_cast<std::size_t>(u)]);
      if (pu != pv) adj[pv * p + pu] = true;
    }
  }
  std::vector<std::int32_t> counts(p, 0);
  for (std::size_t i = 0; i < p; ++i)
    for (std::size_t j = 0; j < p; ++j)
      if (adj[i * p + j]) ++counts[i];
  return counts;
}

MeshQuality mesh_quality(const TriMesh& mesh) {
  MeshQuality q;
  q.min_angle_deg = 180.0;
  q.max_angle_deg = 0.0;
  bool first = true;
  for (const ElemIdx e : mesh.leaf_elements()) {
    const auto& t = mesh.tri(e);
    const double area = mesh.signed_area(e);
    if (first) {
      q.min_volume = q.max_volume = area;
      first = false;
    } else {
      q.min_volume = std::min(q.min_volume, area);
      q.max_volume = std::max(q.max_volume, area);
    }
    for (int i = 0; i < 3; ++i) {
      const Point2& a = mesh.vertex(t.v[static_cast<std::size_t>(i)]);
      const Point2& b = mesh.vertex(t.v[static_cast<std::size_t>((i + 1) % 3)]);
      const Point2& c = mesh.vertex(t.v[static_cast<std::size_t>((i + 2) % 3)]);
      const double ux = b.x - a.x, uy = b.y - a.y;
      const double vx = c.x - a.x, vy = c.y - a.y;
      const double dot = ux * vx + uy * vy;
      const double cross = ux * vy - uy * vx;
      const double angle =
          std::atan2(std::abs(cross), dot) * 180.0 / std::numbers::pi;
      q.min_angle_deg = std::min(q.min_angle_deg, angle);
      q.max_angle_deg = std::max(q.max_angle_deg, angle);
    }
  }
  return q;
}

MeshQuality mesh_quality(const TetMesh& mesh) {
  MeshQuality q;
  bool first = true;
  for (const ElemIdx e : mesh.leaf_elements()) {
    const double vol = mesh.signed_volume(e);
    if (first) {
      q.min_volume = q.max_volume = vol;
      first = false;
    } else {
      q.min_volume = std::min(q.min_volume, vol);
      q.max_volume = std::max(q.max_volume, vol);
    }
  }
  return q;
}

}  // namespace pnr::mesh
