#include "mesh/tri_mesh.hpp"

#include <algorithm>
#include <cmath>

#include "check/level.hpp"
#include "mesh/dual.hpp"
#include "util/assert.hpp"

namespace pnr::mesh {

// ---- construction ----------------------------------------------------------

VertIdx TriMesh::add_vertex(double x, double y) {
  PNR_REQUIRE_MSG(!finalized_, "add_vertex after finalize");
  return new_vertex(x, y);
}

ElemIdx TriMesh::add_triangle(VertIdx a, VertIdx b, VertIdx c) {
  PNR_REQUIRE_MSG(!finalized_, "add_triangle after finalize");
  PNR_REQUIRE(a != b && b != c && a != c);
  const ElemIdx e = new_element();
  Tri& t = tris_[static_cast<std::size_t>(e)];
  t.v = {a, b, c};
  t.leaf = true;
  t.coarse = e;
  return e;
}

void TriMesh::finalize() {
  PNR_REQUIRE_MSG(!finalized_, "finalize called twice");
  PNR_REQUIRE_MSG(!tris_.empty(), "empty mesh");
  num_initial_ = static_cast<ElemIdx>(tris_.size());
  leaf_count_.assign(static_cast<std::size_t>(num_initial_), 1);
  dual_dirty_mark_.assign(static_cast<std::size_t>(num_initial_), false);
  num_leaves_ = num_initial_;

  for (ElemIdx e = 0; e < num_initial_; ++e) {
    Tri& t = tris_[static_cast<std::size_t>(e)];
    if (signed_area(e) < 0.0) std::swap(t.v[1], t.v[2]);
    PNR_REQUIRE_MSG(signed_area(e) > 0.0, "degenerate initial triangle");
    edge_map_add(e);
  }
  finalized_ = true;
}

// ---- slot management --------------------------------------------------------

VertIdx TriMesh::new_vertex(double x, double y) {
  ++num_verts_alive_;
  if (!free_verts_.empty()) {
    const VertIdx v = free_verts_.back();
    free_verts_.pop_back();
    verts_[static_cast<std::size_t>(v)] = {x, y};
    vert_alive_[static_cast<std::size_t>(v)] = true;
    return v;
  }
  verts_.push_back({x, y});
  vert_alive_.push_back(true);
  return static_cast<VertIdx>(verts_.size() - 1);
}

ElemIdx TriMesh::new_element() {
  if (!free_elems_.empty()) {
    const ElemIdx e = free_elems_.back();
    free_elems_.pop_back();
    tris_[static_cast<std::size_t>(e)] = Tri{};
    tris_[static_cast<std::size_t>(e)].alive = true;
    return e;
  }
  tris_.emplace_back();
  tris_.back().alive = true;
  return static_cast<ElemIdx>(tris_.size() - 1);
}

void TriMesh::release_element(ElemIdx e) {
  tris_[static_cast<std::size_t>(e)] = Tri{};
  free_elems_.push_back(e);
}

void TriMesh::release_vertex(VertIdx v) {
  vert_alive_[static_cast<std::size_t>(v)] = false;
  free_verts_.push_back(v);
  --num_verts_alive_;
}

// ---- geometry ---------------------------------------------------------------

double TriMesh::signed_area(ElemIdx e) const {
  const Tri& t = tris_[static_cast<std::size_t>(e)];
  const Point2& p0 = verts_[static_cast<std::size_t>(t.v[0])];
  const Point2& p1 = verts_[static_cast<std::size_t>(t.v[1])];
  const Point2& p2 = verts_[static_cast<std::size_t>(t.v[2])];
  return 0.5 * ((p1.x - p0.x) * (p2.y - p0.y) - (p2.x - p0.x) * (p1.y - p0.y));
}

Point2 TriMesh::centroid(ElemIdx e) const {
  const Tri& t = tris_[static_cast<std::size_t>(e)];
  const Point2& p0 = verts_[static_cast<std::size_t>(t.v[0])];
  const Point2& p1 = verts_[static_cast<std::size_t>(t.v[1])];
  const Point2& p2 = verts_[static_cast<std::size_t>(t.v[2])];
  return {(p0.x + p1.x + p2.x) / 3.0, (p0.y + p1.y + p2.y) / 3.0};
}

std::pair<VertIdx, VertIdx> TriMesh::longest_edge(ElemIdx e) const {
  const Tri& t = tris_[static_cast<std::size_t>(e)];
  double best_len = -1.0;
  std::uint64_t best_key = 0;
  std::pair<VertIdx, VertIdx> best{kNoVert, kNoVert};
  for (int i = 0; i < 3; ++i) {
    const VertIdx a = t.v[static_cast<std::size_t>(i)];
    const VertIdx b = t.v[static_cast<std::size_t>((i + 1) % 3)];
    const Point2& pa = verts_[static_cast<std::size_t>(a)];
    const Point2& pb = verts_[static_cast<std::size_t>(b)];
    const double len =
        (pa.x - pb.x) * (pa.x - pb.x) + (pa.y - pb.y) * (pa.y - pb.y);
    const std::uint64_t key = edge_key(a, b);
    // Deterministic tie-break: longer edge wins; equal lengths pick the
    // larger canonical key so both incident triangles agree.
    if (len > best_len || (len == best_len && key > best_key)) {
      best_len = len;
      best_key = key;
      best = {a, b};
    }
  }
  return best;
}

// ---- leaf-edge incidence ----------------------------------------------------

void TriMesh::edge_map_add(ElemIdx e) {
  const Tri& t = tris_[static_cast<std::size_t>(e)];
  for (int i = 0; i < 3; ++i) {
    const std::uint64_t key =
        edge_key(t.v[static_cast<std::size_t>(i)],
                 t.v[static_cast<std::size_t>((i + 1) % 3)]);
    auto [it, inserted] = edge_map_.try_emplace(key,
                                                std::array<ElemIdx, 2>{e, kNoElem});
    if (!inserted) {
      PNR_REQUIRE_MSG(it->second[1] == kNoElem,
                      "non-manifold edge: more than two triangles");
      it->second[1] = e;
      // The pair just completed: update the coarse interface weight (the
      // paper's incremental P1 bookkeeping).
      const ElemIdx c1 = tris_[static_cast<std::size_t>(it->second[0])].coarse;
      const ElemIdx c2 = t.coarse;
      if (c1 != c2)
        ++coarse_interface_[edge_key(std::min(c1, c2), std::max(c1, c2))];
    }
  }
}

void TriMesh::edge_map_remove(ElemIdx e) {
  const Tri& t = tris_[static_cast<std::size_t>(e)];
  for (int i = 0; i < 3; ++i) {
    const std::uint64_t key =
        edge_key(t.v[static_cast<std::size_t>(i)],
                 t.v[static_cast<std::size_t>((i + 1) % 3)]);
    auto it = edge_map_.find(key);
    PNR_REQUIRE(it != edge_map_.end());
    if (it->second[1] != kNoElem) {
      // Breaking a complete pair: retire its interface contribution.
      const ElemIdx c1 = tris_[static_cast<std::size_t>(it->second[0])].coarse;
      const ElemIdx c2 = tris_[static_cast<std::size_t>(it->second[1])].coarse;
      if (c1 != c2) {
        auto w = coarse_interface_.find(
            edge_key(std::min(c1, c2), std::max(c1, c2)));
        PNR_ASSERT(w != coarse_interface_.end() && w->second > 0);
        if (--w->second == 0) coarse_interface_.erase(w);
      }
    }
    if (it->second[0] == e) it->second[0] = it->second[1];
    else PNR_REQUIRE(it->second[1] == e);
    it->second[1] = kNoElem;
    if (it->second[0] == kNoElem) edge_map_.erase(it);
  }
}

ElemIdx TriMesh::edge_partner(ElemIdx e, VertIdx a, VertIdx b) const {
  const auto it = edge_map_.find(edge_key(a, b));
  if (it == edge_map_.end()) return kNoElem;
  if (it->second[0] == e) return it->second[1];
  PNR_ASSERT(it->second[1] == e);
  return it->second[0];
}

std::vector<ElemIdx> TriMesh::leaf_elements() const {
  std::vector<ElemIdx> leaves;
  leaves.reserve(static_cast<std::size_t>(num_leaves_));
  for (std::size_t e = 0; e < tris_.size(); ++e)
    if (tris_[e].alive && tris_[e].leaf)
      leaves.push_back(static_cast<ElemIdx>(e));
  return leaves;
}

std::vector<char> TriMesh::boundary_vertex_mask() const {
  std::vector<char> mask(verts_.size(), false);
  for (const auto& [key, pair] : edge_map_)
    if (pair[1] == kNoElem) {
      mask[static_cast<std::size_t>(key & 0xffffffffull)] = true;
      mask[static_cast<std::size_t>(key >> 32)] = true;
    }
  return mask;
}

// ---- refinement -------------------------------------------------------------

void TriMesh::bisect(ElemIdx e, VertIdx a, VertIdx b, VertIdx m) {
  Tri& t = tris_[static_cast<std::size_t>(e)];
  PNR_ASSERT(t.leaf);

  // Locate {a,b} in t's cyclic order so the children stay CCW.
  int i = -1;
  for (int k = 0; k < 3; ++k) {
    const VertIdx va = t.v[static_cast<std::size_t>(k)];
    const VertIdx vb = t.v[static_cast<std::size_t>((k + 1) % 3)];
    if ((va == a && vb == b) || (va == b && vb == a)) {
      i = k;
      break;
    }
  }
  PNR_REQUIRE_MSG(i >= 0, "bisection edge not part of the triangle");
  const VertIdx va = t.v[static_cast<std::size_t>(i)];
  const VertIdx vb = t.v[static_cast<std::size_t>((i + 1) % 3)];
  const VertIdx vc = t.v[static_cast<std::size_t>((i + 2) % 3)];

  edge_map_remove(e);

  const ElemIdx c0 = new_element();
  const ElemIdx c1 = new_element();
  Tri& parent = tris_[static_cast<std::size_t>(e)];  // re-take: vector grew
  Tri& t0 = tris_[static_cast<std::size_t>(c0)];
  Tri& t1 = tris_[static_cast<std::size_t>(c1)];
  t0.v = {va, m, vc};
  t1.v = {m, vb, vc};
  for (Tri* child : {&t0, &t1}) {
    child->parent = e;
    child->coarse = parent.coarse;
    child->tag = parent.tag;
    child->level = static_cast<std::int16_t>(parent.level + 1);
    child->leaf = true;
  }
  parent.leaf = false;
  parent.child = {c0, c1};
  parent.mid = m;

  edge_map_add(c0);
  edge_map_add(c1);

  ++num_leaves_;  // two children replace one leaf
  ++leaf_count_[static_cast<std::size_t>(parent.coarse)];
  mark_dual_dirty(parent.coarse);
}

std::int64_t TriMesh::refine(const std::vector<ElemIdx>& marked) {
  PNR_REQUIRE_MSG(finalized_, "refine before finalize");
  std::vector<ElemIdx> stack;
  stack.reserve(marked.size());
  for (ElemIdx e : marked)
    if (is_leaf(e)) stack.push_back(e);

  std::int64_t bisections = 0;
  // Rivara's recursion terminates; the guard only trips on a logic error.
  std::int64_t guard = 64 * (num_leaves_ + 16) + 1024 * static_cast<std::int64_t>(stack.size());
  while (!stack.empty()) {
    PNR_REQUIRE_MSG(--guard > 0, "refinement propagation failed to terminate");
    const ElemIdx t = stack.back();
    if (!is_leaf(t)) {  // already bisected through propagation
      stack.pop_back();
      continue;
    }
    const auto [a, b] = longest_edge(t);
    const ElemIdx partner = edge_partner(t, a, b);
    if (partner != kNoElem) {
      const auto [pa, pb] = longest_edge(partner);
      if (edge_key(pa, pb) != edge_key(a, b)) {
        // The partner's longest edge differs: refine it first (Rivara).
        stack.push_back(partner);
        continue;
      }
    }
    const Point2& pa = verts_[static_cast<std::size_t>(a)];
    const Point2& pb = verts_[static_cast<std::size_t>(b)];
    const VertIdx m = new_vertex(0.5 * (pa.x + pb.x), 0.5 * (pa.y + pb.y));
    bisect(t, a, b, m);
    ++bisections;
    if (partner != kNoElem) {
      bisect(partner, a, b, m);
      ++bisections;
    }
    stack.pop_back();
  }
  if (bisections > 0) ++adapt_version_;
  PNR_CHECK2_AUDIT("TriMesh::refine", check_invariants());
  return bisections;
}

// ---- coarsening -------------------------------------------------------------

std::int64_t TriMesh::coarsen(const std::vector<ElemIdx>& marked) {
  PNR_REQUIRE_MSG(finalized_, "coarsen before finalize");
  std::vector<char> want(tris_.size(), false);
  for (ElemIdx e : marked)
    if (is_leaf(e)) want[static_cast<std::size_t>(e)] = true;

  // Candidate parents: refined elements whose two children are leaves that
  // both want to coarsen. Grouped by the midpoint their bisection created.
  std::unordered_map<VertIdx, std::vector<ElemIdx>> by_mid;
  for (std::size_t e = 0; e < tris_.size(); ++e) {
    const Tri& t = tris_[e];
    if (!t.alive || t.leaf) continue;
    const ElemIdx c0 = t.child[0];
    const ElemIdx c1 = t.child[1];
    if (is_leaf(c0) && is_leaf(c1) && want[static_cast<std::size_t>(c0)] &&
        want[static_cast<std::size_t>(c1)])
      by_mid[t.mid].push_back(static_cast<ElemIdx>(e));
  }
  if (by_mid.empty()) return 0;

  // A midpoint is removable only when *every* leaf using it belongs to the
  // candidate group — otherwise the merge would leave a hanging node.
  std::vector<std::int32_t> touches(verts_.size(), 0);
  for (std::size_t e = 0; e < tris_.size(); ++e) {
    const Tri& t = tris_[e];
    if (!t.alive || !t.leaf) continue;
    for (const VertIdx v : t.v) ++touches[static_cast<std::size_t>(v)];
  }

  // Deterministic processing order.
  std::vector<VertIdx> mids;
  mids.reserve(by_mid.size());
  for (const auto& [m, parents] : by_mid) {
    (void)parents;
    mids.push_back(m);
  }
  std::sort(mids.begin(), mids.end());

  std::int64_t merges = 0;
  for (const VertIdx m : mids) {
    const auto& parents = by_mid[m];
    PNR_ASSERT(parents.size() == 1 || parents.size() == 2);
    if (touches[static_cast<std::size_t>(m)] !=
        2 * static_cast<std::int32_t>(parents.size()))
      continue;
    for (const ElemIdx p : parents) {
      Tri& parent = tris_[static_cast<std::size_t>(p)];
      parent.tag = tris_[static_cast<std::size_t>(parent.child[0])].tag;
      edge_map_remove(parent.child[0]);
      edge_map_remove(parent.child[1]);
      release_element(parent.child[0]);
      release_element(parent.child[1]);
      parent.child = {kNoElem, kNoElem};
      parent.mid = kNoVert;
      parent.leaf = true;
      edge_map_add(p);
      --num_leaves_;
      --leaf_count_[static_cast<std::size_t>(parent.coarse)];
      mark_dual_dirty(parent.coarse);
      ++merges;
    }
    release_vertex(m);
  }
  if (merges > 0) ++adapt_version_;
  PNR_CHECK2_AUDIT("TriMesh::coarsen", check_invariants());
  return merges;
}

// ---- dual-delta bookkeeping -------------------------------------------------

std::int64_t TriMesh::coarse_interface_weight(ElemIdx c1, ElemIdx c2) const {
  const auto it = coarse_interface_.find(edge_key(c1, c2));
  return it == coarse_interface_.end() ? 0 : it->second;
}

DualWeightDelta TriMesh::drain_dual_delta() {
  DualWeightDelta delta;
  delta.prev_epoch = dual_drains_;
  delta.epoch = ++dual_drains_;
  delta.vertices = std::move(dual_dirty_);
  dual_dirty_.clear();
  std::sort(delta.vertices.begin(), delta.vertices.end());
  for (const ElemIdx c : delta.vertices)
    dual_dirty_mark_[static_cast<std::size_t>(c)] = false;
  return delta;
}

// ---- validation -------------------------------------------------------------

std::string TriMesh::check_invariants() const {
  if (!finalized_) return "not finalized";
  std::int64_t leaves = 0;
  std::vector<std::int64_t> leaf_count(leaf_count_.size(), 0);

  for (std::size_t e = 0; e < tris_.size(); ++e) {
    const Tri& t = tris_[e];
    if (!t.alive) continue;
    if (t.leaf) {
      ++leaves;
      if (t.coarse < 0 || t.coarse >= num_initial_) return "bad coarse id";
      ++leaf_count[static_cast<std::size_t>(t.coarse)];
      if (signed_area(static_cast<ElemIdx>(e)) <= 0.0)
        return "non-positive leaf area";
      for (const VertIdx v : t.v)
        if (!vert_alive_[static_cast<std::size_t>(v)])
          return "leaf references dead vertex";
    } else {
      if (t.child[0] == kNoElem || t.child[1] == kNoElem)
        return "interior node missing children";
      for (const ElemIdx c : t.child) {
        const Tri& ct = tris_[static_cast<std::size_t>(c)];
        if (!ct.alive) return "child slot dead";
        if (ct.parent != static_cast<ElemIdx>(e)) return "child parent link broken";
        if (ct.level != t.level + 1) return "child level wrong";
        if (ct.coarse != t.coarse) return "child coarse ancestor wrong";
      }
      if (t.mid == kNoVert) return "interior node missing midpoint";
      if (!vert_alive_[static_cast<std::size_t>(t.mid)])
        return "midpoint vertex dead";
    }
  }
  if (leaves != num_leaves_) return "leaf count cache wrong";
  for (std::size_t c = 0; c < leaf_count.size(); ++c)
    if (leaf_count[c] != leaf_count_[c]) return "per-coarse leaf count wrong";

  // Edge map must exactly reflect the leaf edges, and every interior edge
  // must have exactly two leaves (conformity: no hanging nodes).
  std::unordered_map<std::uint64_t, std::int32_t> expected;
  for (std::size_t e = 0; e < tris_.size(); ++e) {
    const Tri& t = tris_[e];
    if (!t.alive || !t.leaf) continue;
    for (int i = 0; i < 3; ++i)
      ++expected[edge_key(t.v[static_cast<std::size_t>(i)],
                          t.v[static_cast<std::size_t>((i + 1) % 3)])];
  }
  if (expected.size() != edge_map_.size()) return "edge map size mismatch";
  for (const auto& [key, count] : expected) {
    const auto it = edge_map_.find(key);
    if (it == edge_map_.end()) return "edge missing from map";
    const int have = (it->second[0] != kNoElem) + (it->second[1] != kNoElem);
    if (have != count) return "edge incidence mismatch";
    if (count > 2) return "non-manifold edge";
  }
  // Conformity: a vertex of one leaf lying strictly inside another leaf's
  // edge would show up as edge-incidence mismatch above, because the two
  // sides would generate different edge keys; nothing further to check.

  // The incrementally maintained coarse-interface weights must equal a
  // from-scratch recount.
  std::unordered_map<std::uint64_t, std::int64_t> recount;
  for (const auto& [key, pair] : edge_map_) {
    (void)key;
    if (pair[1] == kNoElem) continue;
    const ElemIdx c1 = tris_[static_cast<std::size_t>(pair[0])].coarse;
    const ElemIdx c2 = tris_[static_cast<std::size_t>(pair[1])].coarse;
    if (c1 != c2) ++recount[edge_key(std::min(c1, c2), std::max(c1, c2))];
  }
  if (recount.size() != coarse_interface_.size())
    return "coarse interface map size mismatch";
  for (const auto& [key, w] : recount) {
    const auto it = coarse_interface_.find(key);
    if (it == coarse_interface_.end() || it->second != w)
      return "coarse interface weight mismatch";
  }
  return {};
}

}  // namespace pnr::mesh
