#pragma once
// Mesh file I/O.
//
// * Triangle / TetGen format (.node + .ele, Shewchuk's tools): the de facto
//   exchange format for simplicial meshes. Reading produces a 0-level mesh
//   ready for adaptation; writing dumps the current leaves as a flat mesh.
// * VTK legacy format (.vtk, ASCII unstructured grid) with an optional
//   per-cell "partition" scalar — loadable in ParaView, and the only way to
//   look at the 3D experiments.

#include <optional>
#include <string>
#include <vector>

#include "mesh/tet_mesh.hpp"
#include "mesh/tri_mesh.hpp"
#include "partition/partition.hpp"

namespace pnr::mesh {

/// Write `basename`.node and `basename`.ele (1-based indices, no attributes)
/// describing the current leaf mesh. Returns false on I/O failure.
bool write_triangle_files(const TriMesh& mesh, const std::string& basename);
bool write_triangle_files(const TetMesh& mesh, const std::string& basename);

/// Read `basename`.node/.ele into a fresh 0-level mesh. Accepts 0- or
/// 1-based indices, comment lines (#), and optional attribute/marker
/// columns. Hardened against hostile input: absurd header counts,
/// duplicate ids, truncation, out-of-range indices, and degenerate or
/// non-manifold geometry all return nullopt with no partial state and no
/// aborts (validation runs through mesh/build.hpp before assembly).
std::optional<TriMesh> read_triangle_files(const std::string& basename);
std::optional<TetMesh> read_tetgen_files(const std::string& basename);

/// Legacy-VTK dump of the leaves; `assign` (one entry per element of
/// `elems`, may be empty) becomes a CELL_DATA scalar named "partition".
bool write_vtk(const TriMesh& mesh, const std::vector<ElemIdx>& elems,
               const std::vector<part::PartId>& assign,
               const std::string& path);
bool write_vtk(const TetMesh& mesh, const std::vector<ElemIdx>& elems,
               const std::vector<part::PartId>& assign,
               const std::string& path);

}  // namespace pnr::mesh
