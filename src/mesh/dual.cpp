#include "mesh/dual.hpp"

#include "graph/builder.hpp"
#include "util/assert.hpp"

namespace pnr::mesh {

namespace {

template <typename Mesh, typename ForEachInterface>
FineDual fine_dual_impl(const Mesh& mesh, ForEachInterface&& for_each) {
  FineDual out;
  out.elems = mesh.leaf_elements();
  out.dense.assign(mesh.element_slots(), -1);
  for (std::size_t i = 0; i < out.elems.size(); ++i)
    out.dense[static_cast<std::size_t>(out.elems[i])] =
        static_cast<graph::VertexId>(i);

  graph::GraphBuilder builder(static_cast<graph::VertexId>(out.elems.size()));
  for_each([&](ElemIdx e1, ElemIdx e2) {
    if (e1 == kNoElem || e2 == kNoElem) return;
    builder.add_edge(out.dense[static_cast<std::size_t>(e1)],
                     out.dense[static_cast<std::size_t>(e2)], 1);
  });
  out.graph = builder.build();
  return out;
}

}  // namespace

FineDual fine_dual_graph(const TriMesh& mesh) {
  return fine_dual_impl(mesh, [&](auto&& emit) {
    mesh.for_each_leaf_edge(
        [&](VertIdx, VertIdx, ElemIdx e1, ElemIdx e2) { emit(e1, e2); });
  });
}

FineDual fine_dual_graph(const TetMesh& mesh) {
  return fine_dual_impl(mesh, [&](auto&& emit) {
    mesh.for_each_leaf_face([&](VertIdx, VertIdx, VertIdx, ElemIdx e1,
                                ElemIdx e2) { emit(e1, e2); });
  });
}

namespace {

/// Both meshes maintain per-coarse leaf counts and interface weights
/// incrementally (the paper's P1 phase), so assembling G is O(|G|), not
/// O(fine mesh).
template <typename Mesh>
graph::Graph nested_dual_impl2(const Mesh& mesh) {
  const auto n0 = mesh.num_initial_elements();
  graph::GraphBuilder builder(n0);
  for (ElemIdx c = 0; c < n0; ++c)
    builder.set_vertex_weight(c, mesh.leaf_count(c));
  mesh.for_each_coarse_interface(
      [&](ElemIdx c1, ElemIdx c2, std::int64_t w) {
        builder.add_edge(c1, c2, w);
      });
  return builder.build();
}

}  // namespace

graph::Graph nested_dual_graph(const TriMesh& mesh) {
  return nested_dual_impl2(mesh);
}

graph::Graph nested_dual_graph(const TetMesh& mesh) {
  return nested_dual_impl2(mesh);
}

std::vector<double> leaf_centroids(const TriMesh& mesh,
                                   const std::vector<ElemIdx>& elems) {
  std::vector<double> coords(elems.size() * 2);
  for (std::size_t i = 0; i < elems.size(); ++i) {
    const Point2 c = mesh.centroid(elems[i]);
    coords[i * 2] = c.x;
    coords[i * 2 + 1] = c.y;
  }
  return coords;
}

std::vector<double> leaf_centroids(const TetMesh& mesh,
                                   const std::vector<ElemIdx>& elems) {
  std::vector<double> coords(elems.size() * 3);
  for (std::size_t i = 0; i < elems.size(); ++i) {
    const Point3 c = mesh.centroid(elems[i]);
    coords[i * 3] = c.x;
    coords[i * 3 + 1] = c.y;
    coords[i * 3 + 2] = c.z;
  }
  return coords;
}

std::vector<part::PartId> project_coarse_assignment(
    const TriMesh& mesh, const std::vector<ElemIdx>& elems,
    std::span<const part::PartId> coarse_assign) {
  PNR_REQUIRE(coarse_assign.size() ==
              static_cast<std::size_t>(mesh.num_initial_elements()));
  std::vector<part::PartId> out(elems.size());
  for (std::size_t i = 0; i < elems.size(); ++i)
    out[i] = coarse_assign[static_cast<std::size_t>(mesh.tri(elems[i]).coarse)];
  return out;
}

std::vector<part::PartId> project_coarse_assignment(
    const TetMesh& mesh, const std::vector<ElemIdx>& elems,
    std::span<const part::PartId> coarse_assign) {
  PNR_REQUIRE(coarse_assign.size() ==
              static_cast<std::size_t>(mesh.num_initial_elements()));
  std::vector<part::PartId> out(elems.size());
  for (std::size_t i = 0; i < elems.size(); ++i)
    out[i] = coarse_assign[static_cast<std::size_t>(mesh.tet(elems[i]).coarse)];
  return out;
}

}  // namespace pnr::mesh
