#include "mesh/dual.hpp"

#include "exec/pool.hpp"
#include "graph/builder.hpp"
#include "util/assert.hpp"
#include "util/prof.hpp"

namespace pnr::mesh {

namespace {

template <typename Mesh, typename ForEachInterface>
FineDual fine_dual_impl(const Mesh& mesh, ForEachInterface&& for_each) {
  PNR_PROF_SPAN("mesh.dual");
  FineDual out;
  out.elems = mesh.leaf_elements();
  out.dense.assign(mesh.element_slots(), -1);
  const auto num_leaves = static_cast<std::int64_t>(out.elems.size());
  exec::Pool& pool = exec::default_pool();
  pool.parallel_for(num_leaves, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i)
      out.dense[static_cast<std::size_t>(
          out.elems[static_cast<std::size_t>(i)])] =
          static_cast<graph::VertexId>(i);
  });

  // The interface walk goes through a mesh callback and stays serial; it
  // only appends to a flat edge batch, which the deterministic parallel
  // assembler then turns into the CSR graph.
  std::vector<graph::WeightedEdge> edges;
  edges.reserve(static_cast<std::size_t>(num_leaves) * 3 / 2);
  for_each([&](ElemIdx e1, ElemIdx e2) {
    if (e1 == kNoElem || e2 == kNoElem) return;
    edges.push_back({out.dense[static_cast<std::size_t>(e1)],
                     out.dense[static_cast<std::size_t>(e2)], 1});
  });
  out.graph = graph::build_csr_from_edges(
      static_cast<graph::VertexId>(num_leaves), edges, {});
  return out;
}

}  // namespace

FineDual fine_dual_graph(const TriMesh& mesh) {
  return fine_dual_impl(mesh, [&](auto&& emit) {
    mesh.for_each_leaf_edge(
        [&](VertIdx, VertIdx, ElemIdx e1, ElemIdx e2) { emit(e1, e2); });
  });
}

FineDual fine_dual_graph(const TetMesh& mesh) {
  return fine_dual_impl(mesh, [&](auto&& emit) {
    mesh.for_each_leaf_face([&](VertIdx, VertIdx, VertIdx, ElemIdx e1,
                                ElemIdx e2) { emit(e1, e2); });
  });
}

namespace {

/// Both meshes maintain per-coarse leaf counts and interface weights
/// incrementally (the paper's P1 phase), so assembling G is O(|G|), not
/// O(fine mesh).
template <typename Mesh>
graph::Graph nested_dual_impl2(const Mesh& mesh) {
  const auto n0 = mesh.num_initial_elements();
  graph::GraphBuilder builder(n0);
  for (ElemIdx c = 0; c < n0; ++c)
    builder.set_vertex_weight(c, mesh.leaf_count(c));
  mesh.for_each_coarse_interface(
      [&](ElemIdx c1, ElemIdx c2, std::int64_t w) {
        builder.add_edge(c1, c2, w);
      });
  return builder.build();
}

}  // namespace

graph::Graph nested_dual_graph(const TriMesh& mesh) {
  return nested_dual_impl2(mesh);
}

graph::Graph nested_dual_graph(const TetMesh& mesh) {
  return nested_dual_impl2(mesh);
}

namespace {

template <typename Mesh>
bool apply_dual_delta_impl(const Mesh& mesh, const DualWeightDelta& delta,
                           graph::Graph& g) {
  PNR_PROF_SPAN("mesh.dual_delta");
  PNR_REQUIRE(g.num_vertices() == mesh.num_initial_elements());
  for (const ElemIdx c : delta.vertices) {
    g.set_vertex_weight(c, mesh.leaf_count(c));
    // Every interface whose weight moved has at least one endpoint in the
    // dirty set (only bisection/coarsening under an endpoint can change the
    // adjacent-leaf-pair count), so refreshing each dirty vertex's full
    // adjacency covers all edge changes. A conforming mesh keeps every M^0
    // interface populated, so a zero here means `g` is not this mesh's dual.
    for (const graph::VertexId x : g.neighbors(c)) {
      const std::int64_t w =
          mesh.coarse_interface_weight(c, static_cast<ElemIdx>(x));
      if (w <= 0) return false;
      if (!g.set_edge_weight(c, x, w)) return false;
    }
  }
  return true;
}

}  // namespace

bool apply_dual_delta(const TriMesh& mesh, const DualWeightDelta& delta,
                      graph::Graph& g) {
  return apply_dual_delta_impl(mesh, delta, g);
}

bool apply_dual_delta(const TetMesh& mesh, const DualWeightDelta& delta,
                      graph::Graph& g) {
  return apply_dual_delta_impl(mesh, delta, g);
}

std::vector<double> leaf_centroids(const TriMesh& mesh,
                                   const std::vector<ElemIdx>& elems) {
  std::vector<double> coords(elems.size() * 2);
  exec::default_pool().parallel_for(
      static_cast<std::int64_t>(elems.size()),
      [&](std::int64_t b, std::int64_t e) {
        for (std::int64_t k = b; k < e; ++k) {
          const auto i = static_cast<std::size_t>(k);
          const Point2 c = mesh.centroid(elems[i]);
          coords[i * 2] = c.x;
          coords[i * 2 + 1] = c.y;
        }
      });
  return coords;
}

std::vector<double> leaf_centroids(const TetMesh& mesh,
                                   const std::vector<ElemIdx>& elems) {
  std::vector<double> coords(elems.size() * 3);
  exec::default_pool().parallel_for(
      static_cast<std::int64_t>(elems.size()),
      [&](std::int64_t b, std::int64_t e) {
        for (std::int64_t k = b; k < e; ++k) {
          const auto i = static_cast<std::size_t>(k);
          const Point3 c = mesh.centroid(elems[i]);
          coords[i * 3] = c.x;
          coords[i * 3 + 1] = c.y;
          coords[i * 3 + 2] = c.z;
        }
      });
  return coords;
}

std::vector<double> coarse_centroids(const TriMesh& mesh) {
  const auto n = static_cast<std::size_t>(mesh.num_initial_elements());
  std::vector<double> coords(n * 2);
  exec::default_pool().parallel_for(
      static_cast<std::int64_t>(n), [&](std::int64_t b, std::int64_t e) {
        for (std::int64_t k = b; k < e; ++k) {
          const auto i = static_cast<std::size_t>(k);
          const Point2 c = mesh.centroid(static_cast<ElemIdx>(k));
          coords[i * 2] = c.x;
          coords[i * 2 + 1] = c.y;
        }
      });
  return coords;
}

std::vector<double> coarse_centroids(const TetMesh& mesh) {
  const auto n = static_cast<std::size_t>(mesh.num_initial_elements());
  std::vector<double> coords(n * 3);
  exec::default_pool().parallel_for(
      static_cast<std::int64_t>(n), [&](std::int64_t b, std::int64_t e) {
        for (std::int64_t k = b; k < e; ++k) {
          const auto i = static_cast<std::size_t>(k);
          const Point3 c = mesh.centroid(static_cast<ElemIdx>(k));
          coords[i * 3] = c.x;
          coords[i * 3 + 1] = c.y;
          coords[i * 3 + 2] = c.z;
        }
      });
  return coords;
}

std::vector<part::PartId> project_coarse_assignment(
    const TriMesh& mesh, const std::vector<ElemIdx>& elems,
    std::span<const part::PartId> coarse_assign) {
  PNR_REQUIRE(coarse_assign.size() ==
              static_cast<std::size_t>(mesh.num_initial_elements()));
  std::vector<part::PartId> out(elems.size());
  exec::default_pool().parallel_for(
      static_cast<std::int64_t>(elems.size()),
      [&](std::int64_t b, std::int64_t e) {
        for (std::int64_t k = b; k < e; ++k) {
          const auto i = static_cast<std::size_t>(k);
          out[i] =
              coarse_assign[static_cast<std::size_t>(mesh.tri(elems[i]).coarse)];
        }
      });
  return out;
}

std::vector<part::PartId> project_coarse_assignment(
    const TetMesh& mesh, const std::vector<ElemIdx>& elems,
    std::span<const part::PartId> coarse_assign) {
  PNR_REQUIRE(coarse_assign.size() ==
              static_cast<std::size_t>(mesh.num_initial_elements()));
  std::vector<part::PartId> out(elems.size());
  exec::default_pool().parallel_for(
      static_cast<std::int64_t>(elems.size()),
      [&](std::int64_t b, std::int64_t e) {
        for (std::int64_t k = b; k < e; ++k) {
          const auto i = static_cast<std::size_t>(k);
          out[i] =
              coarse_assign[static_cast<std::size_t>(mesh.tet(elems[i]).coarse)];
        }
      });
  return out;
}

}  // namespace pnr::mesh
