#pragma once
// Quasi-uniform unstructured initial meshes over the paper's domains
// Ω² = (-1,1)² and Ω³ = (-1,1)³. Structured grids are split into simplices
// and interior vertices are jittered (bounded so no element can invert),
// yielding the "irregular meshes of about the same element size" the paper
// starts from. With nx = ny = 79 the 2D mesh has 12,482 triangles
// (paper: 12,498); with 12×12×12 cubes the 3D mesh has 10,368 tetrahedra
// (paper: 9,540).

#include <cstdint>

#include "mesh/tet_mesh.hpp"
#include "mesh/tri_mesh.hpp"

namespace pnr::mesh {

/// nx × ny cells on (-1,1)², two triangles per cell with alternating
/// diagonals; `jitter` ∈ [0, 0.45) displaces interior vertices by at most
/// jitter·h in each coordinate.
TriMesh structured_tri_mesh(int nx, int ny, double jitter = 0.25,
                            std::uint64_t seed = 1);

/// nx × ny × nz cells on (-1,1)³, six tetrahedra per cell (Kuhn/Freudenthal
/// subdivision, conforming across cells).
TetMesh structured_tet_mesh(int nx, int ny, int nz, double jitter = 0.2,
                            std::uint64_t seed = 1);

/// The paper's initial meshes (Section 6).
TriMesh paper_initial_tri_mesh(std::uint64_t seed = 1);   // 12,482 triangles
TetMesh paper_initial_tet_mesh(std::uint64_t seed = 1);   // 10,368 tets

}  // namespace pnr::mesh
