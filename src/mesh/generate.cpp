#include "mesh/generate.hpp"

#include <array>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace pnr::mesh {

TriMesh structured_tri_mesh(int nx, int ny, double jitter, std::uint64_t seed) {
  PNR_REQUIRE(nx >= 1 && ny >= 1);
  PNR_REQUIRE(jitter >= 0.0 && jitter < 0.45);
  util::Rng rng(seed);
  TriMesh mesh;

  const double hx = 2.0 / nx;
  const double hy = 2.0 / ny;
  for (int j = 0; j <= ny; ++j)
    for (int i = 0; i <= nx; ++i) {
      double x = -1.0 + hx * i;
      double y = -1.0 + hy * j;
      const bool interior = i > 0 && i < nx && j > 0 && j < ny;
      if (interior && jitter > 0.0) {
        // Displacement capped at jitter·h/2 so no triangle can invert.
        x += rng.uniform(-jitter * hx / 2.0, jitter * hx / 2.0);
        y += rng.uniform(-jitter * hy / 2.0, jitter * hy / 2.0);
      }
      mesh.add_vertex(x, y);
    }

  auto vid = [&](int i, int j) {
    return static_cast<VertIdx>(j * (nx + 1) + i);
  };
  for (int j = 0; j < ny; ++j)
    for (int i = 0; i < nx; ++i) {
      const VertIdx v00 = vid(i, j), v10 = vid(i + 1, j);
      const VertIdx v01 = vid(i, j + 1), v11 = vid(i + 1, j + 1);
      // Alternate the diagonal by cell parity for isotropy.
      if ((i + j) % 2 == 0) {
        mesh.add_triangle(v00, v10, v11);
        mesh.add_triangle(v00, v11, v01);
      } else {
        mesh.add_triangle(v00, v10, v01);
        mesh.add_triangle(v10, v11, v01);
      }
    }
  mesh.finalize();
  return mesh;
}

TetMesh structured_tet_mesh(int nx, int ny, int nz, double jitter,
                            std::uint64_t seed) {
  PNR_REQUIRE(nx >= 1 && ny >= 1 && nz >= 1);
  PNR_REQUIRE(jitter >= 0.0 && jitter < 0.45);
  util::Rng rng(seed);
  TetMesh mesh;

  const double hx = 2.0 / nx;
  const double hy = 2.0 / ny;
  const double hz = 2.0 / nz;
  for (int k = 0; k <= nz; ++k)
    for (int j = 0; j <= ny; ++j)
      for (int i = 0; i <= nx; ++i) {
        double x = -1.0 + hx * i;
        double y = -1.0 + hy * j;
        double z = -1.0 + hz * k;
        const bool interior =
            i > 0 && i < nx && j > 0 && j < ny && k > 0 && k < nz;
        if (interior && jitter > 0.0) {
          x += rng.uniform(-jitter * hx / 2.0, jitter * hx / 2.0);
          y += rng.uniform(-jitter * hy / 2.0, jitter * hy / 2.0);
          z += rng.uniform(-jitter * hz / 2.0, jitter * hz / 2.0);
        }
        mesh.add_vertex(x, y, z);
      }

  auto vid = [&](int i, int j, int k) {
    return static_cast<VertIdx>((k * (ny + 1) + j) * (nx + 1) + i);
  };
  // Kuhn/Freudenthal subdivision: six tets per cube, one per permutation of
  // the unit steps; conforming across neighboring cubes by construction.
  constexpr std::array<std::array<int, 3>, 6> kPerms{{
      {0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}};
  for (int k = 0; k < nz; ++k)
    for (int j = 0; j < ny; ++j)
      for (int i = 0; i < nx; ++i)
        for (const auto& perm : kPerms) {
          std::array<int, 3> at{i, j, k};
          std::array<VertIdx, 4> tv;
          tv[0] = vid(at[0], at[1], at[2]);
          for (int s = 0; s < 3; ++s) {
            ++at[static_cast<std::size_t>(perm[static_cast<std::size_t>(s)])];
            tv[static_cast<std::size_t>(s + 1)] = vid(at[0], at[1], at[2]);
          }
          mesh.add_tet(tv[0], tv[1], tv[2], tv[3]);
        }
  mesh.finalize();
  return mesh;
}

TriMesh paper_initial_tri_mesh(std::uint64_t seed) {
  // 79 × 79 × 2 = 12,482 triangles ≈ the paper's 12,498.
  return structured_tri_mesh(79, 79, 0.25, seed);
}

TetMesh paper_initial_tet_mesh(std::uint64_t seed) {
  // 12 × 12 × 12 × 6 = 10,368 tets ≈ the paper's 9,540.
  return structured_tet_mesh(12, 12, 12, 0.2, seed);
}

}  // namespace pnr::mesh
