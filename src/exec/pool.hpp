#pragma once
// pnr::exec — the deterministic shared-memory task runtime. A lazily
// started worker pool with three primitives (parallel_for, parallel_reduce,
// exclusive_scan) and one escape hatch (SerialRegion), designed around a
// single contract: **the result of every primitive is a pure function of
// the input and the chunking, never of the thread count or the scheduling.**
//
// How the contract is kept (see DESIGN.md, "Node-level threading"):
//
//   * The chunk decomposition of [0, n) depends only on n and the Chunking
//     parameters — never on num_threads(). Threads claim chunks dynamically,
//     but which thread runs a chunk cannot matter: parallel_for bodies write
//     disjoint outputs (or commute, e.g. relaxed integer atomics), and
//     parallel_reduce stores per-chunk partials by chunk id.
//   * parallel_reduce combines the partials on the calling thread in a
//     fixed-shape pairwise tree over chunk ids. The same tree is used when
//     the pool has one thread, so floating-point reductions are bitwise
//     identical for any pool size. With a single chunk the result equals the
//     plain left-to-right loop.
//   * Nested parallel_* calls (from inside a worker) and calls under an open
//     SerialRegion run inline on the calling thread, in chunk order.
//
// The pool integrates with pnr::prof at region granularity: exec.tasks,
// exec.chunks_run, the exec.threads gauge and exec.worker_{busy,idle}_ns
// (docs/OBSERVABILITY.md). All node-level parallelism flows through this
// pool — scripts/lint.py forbids raw std::thread outside src/exec/ and
// src/parallel/ (the distributed-memory simulator, whose ranks are *logical*
// processes, not a performance device).

#include <atomic>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include "util/assert.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace pnr::exec {

/// Deterministic chunk decomposition of [0, n): at most
/// ceil(n / grain) chunks (bounded by max_chunks when nonzero), sized as
/// evenly as possible with the remainder spread over the leading chunks.
/// Depends only on n and this struct — never on the thread count.
struct Chunking {
  std::int64_t grain = 1024;      ///< minimum elements per chunk
  std::int64_t max_chunks = 4096; ///< cap on the number of chunks (0 = none)
};

std::int64_t num_chunks(std::int64_t n, const Chunking& ck);

/// Half-open range [begin, end) of chunk `c` out of `chunks` over [0, n).
std::pair<std::int64_t, std::int64_t> chunk_range(std::int64_t n,
                                                  std::int64_t chunks,
                                                  std::int64_t c);

/// While alive, every parallel_* call issued from this thread runs inline
/// and serially (same chunking, same results). Used by the pnr::check
/// level-2 cross-checks to recompute a kernel serially, and available to
/// any caller that must not fan out (e.g. inside simulator ranks).
class SerialRegion {
 public:
  SerialRegion();
  ~SerialRegion();
  SerialRegion(const SerialRegion&) = delete;
  SerialRegion& operator=(const SerialRegion&) = delete;
};

/// True when parallel_* calls from this thread would run inline: inside a
/// SerialRegion, or on a worker thread (nested calls never re-enter the
/// pool).
bool in_serial_context();

class Pool {
 public:
  /// A pool that will run `threads` ways (1 = strictly serial). Workers are
  /// not spawned until the first parallel region needs them.
  explicit Pool(int threads = 1);
  ~Pool();
  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  int num_threads() const { return target_threads_; }

  /// Join and discard the workers. The pool stays usable: the next parallel
  /// region lazily restarts them with the same thread count.
  void shutdown() PNR_EXCLUDES(region_mutex_);

  /// Change the thread count (joins current workers first).
  void resize(int threads) PNR_EXCLUDES(region_mutex_);

  /// True when parallel_* on this pool would run inline on the calling
  /// thread: a 1-thread pool, a nested call, or an open SerialRegion.
  bool serial() const {
    return target_threads_ <= 1 || in_serial_context();
  }

  /// Run fn(begin, end) over the fixed chunk decomposition of [0, n).
  /// Chunks execute concurrently (or inline, in chunk order, when serial());
  /// fn must write disjoint outputs or commute. The first exception thrown
  /// by any chunk is rethrown on the calling thread after the region ends.
  template <typename Fn>
  void parallel_for(std::int64_t n, Fn&& fn, Chunking ck = {}) {
    const std::int64_t chunks = num_chunks(n, ck);
    if (chunks <= 0) return;
    if (chunks == 1) {
      fn(std::int64_t{0}, n);
      return;
    }
    if (serial()) {
      for (std::int64_t c = 0; c < chunks; ++c) {
        const auto [b, e] = chunk_range(n, chunks, c);
        fn(b, e);
      }
      return;
    }
    run(chunks, [&](std::int64_t c) {
      const auto [b, e] = chunk_range(n, chunks, c);
      fn(b, e);
    });
  }

  /// Ordered reduction: partial[c] = map(begin_c, end_c) per chunk, then a
  /// fixed-shape pairwise combine over chunk ids on the calling thread.
  /// Bitwise identical for any thread count (including 1) by construction;
  /// with a single chunk the result is exactly map(0, n). `identity` is
  /// returned only for an empty range — it is never folded in.
  template <typename T, typename Map, typename Combine>
  T parallel_reduce(std::int64_t n, T identity, Map&& map, Combine&& combine,
                    Chunking ck = {}) {
    const std::int64_t chunks = num_chunks(n, ck);
    if (chunks <= 0) return identity;
    if (chunks == 1) return map(std::int64_t{0}, n);
    // Seeded with copies of `identity` so T needs no default constructor;
    // every slot is overwritten before the combine tree reads it.
    std::vector<T> partials(static_cast<std::size_t>(chunks), identity);
    if (serial()) {
      for (std::int64_t c = 0; c < chunks; ++c) {
        const auto [b, e] = chunk_range(n, chunks, c);
        partials[static_cast<std::size_t>(c)] = map(b, e);
      }
    } else {
      run(chunks, [&](std::int64_t c) {
        const auto [b, e] = chunk_range(n, chunks, c);
        partials[static_cast<std::size_t>(c)] = map(b, e);
      });
    }
    // Fixed pairwise tree over chunk ids: (0,1)(2,3)... per level, odd
    // leftover promoted. The shape depends only on the chunk count.
    std::size_t width = partials.size();
    while (width > 1) {
      std::size_t next = 0;
      for (std::size_t i = 0; i + 1 < width; i += 2)
        partials[next++] = combine(std::move(partials[i]),
                                   std::move(partials[i + 1]));
      if (width % 2 == 1) partials[next++] = std::move(partials[width - 1]);
      width = next;
    }
    return std::move(partials[0]);
  }

  /// Exclusive prefix sum of `in` into `out` (same length); returns the
  /// total. Deterministic (integer addition); parallel via per-chunk sums,
  /// a serial scan over the chunk sums, and a parallel fill.
  std::int64_t exclusive_scan(std::span<const std::int64_t> in,
                              std::span<std::int64_t> out, Chunking ck = {});

  /// Detached-task API: enqueue `task` for asynchronous execution on a
  /// dedicated task worker. Tasks are started in submission order (FIFO) on
  /// up to num_threads() workers, which are lazily spawned and are separate
  /// from the region workers — a parallel_for region and a detached task can
  /// make progress at the same time on the same pool. Inside a task,
  /// in_serial_context() is true, so nested parallel_* calls run inline in
  /// chunk order (the deterministic serial schedule). The pnr::svc sharded
  /// server runs its shard-drain actors through this.
  void submit(std::function<void()> task);

  /// Block until every submitted task (including ones submitted by running
  /// tasks) has finished; rethrows the first exception a task escaped with.
  void wait_detached();

 private:
  /// Execute chunk_fn(c) for every c in [0, chunks) across the workers and
  /// the calling thread; blocks until all chunks ran and every signalled
  /// worker left the region. Rethrows the first stored exception.
  void run(std::int64_t chunks, const std::function<void(std::int64_t)>& fn)
      PNR_EXCLUDES(region_mutex_);

  void ensure_started() PNR_REQUIRES(region_mutex_);
  /// `birth_epoch` is the region epoch at launch time: a worker restarted
  /// after shutdown() must not treat the pool's accumulated epoch count as
  /// a pending region.
  void worker_main(std::uint64_t birth_epoch);
  /// Claim-and-run loop shared by workers and the calling thread. Returns
  /// this participant's busy nanoseconds (0 when profiling is disabled).
  std::uint64_t work_through(std::int64_t chunks,
                             const std::function<void(std::int64_t)>& fn,
                             bool measure);

  /// Written only by resize() between regions ("not safe concurrently with
  /// running regions" is the documented contract); read lock-free by
  /// num_threads()/serial()/submit().
  int target_threads_;

  /// Region-lifecycle lock: held for a whole parallel region, and by
  /// shutdown()/ensure_started() while spawning or joining the region
  /// workers, so a region can never race worker teardown. Always acquired
  /// before mutex_ (never the other way around — workers take only mutex_).
  util::Mutex region_mutex_ PNR_ACQUIRED_BEFORE(mutex_);
  std::vector<std::thread> workers_ PNR_GUARDED_BY(region_mutex_);

  /// Region-state lock: everything the workers and the caller share while a
  /// region runs.
  util::Mutex mutex_;
  util::CondVar work_cv_;  ///< signals a new region (or stop)
  util::CondVar done_cv_;  ///< signals workers leaving the region
  bool stop_ PNR_GUARDED_BY(mutex_) = false;
  /// Bumped per region; workers wait on it.
  std::uint64_t epoch_ PNR_GUARDED_BY(mutex_) = 0;
  std::int64_t region_chunks_ PNR_GUARDED_BY(mutex_) = 0;
  const std::function<void(std::int64_t)>* region_fn_
      PNR_GUARDED_BY(mutex_) = nullptr;
  bool region_measure_ PNR_GUARDED_BY(mutex_) = false;
  int workers_in_region_ PNR_GUARDED_BY(mutex_) = 0;
  std::atomic<std::int64_t> next_chunk_{0};
  std::atomic<std::uint64_t> busy_ns_{0};
  std::exception_ptr error_ PNR_GUARDED_BY(mutex_);

  // Detached-task machinery (submit/wait_detached). Guarded by task_mutex_;
  // independent of the region state above so regions and tasks never
  // contend on one lock.
  void task_worker_main();

  util::Mutex task_mutex_;
  util::CondVar task_cv_;       ///< new task queued (or stop)
  util::CondVar task_done_cv_;  ///< queue drained and workers idle
  std::vector<std::thread> task_workers_ PNR_GUARDED_BY(task_mutex_);
  std::deque<std::function<void()>> task_queue_ PNR_GUARDED_BY(task_mutex_);
  int task_idle_ PNR_GUARDED_BY(task_mutex_) = 0;      ///< blocked for work
  int tasks_active_ PNR_GUARDED_BY(task_mutex_) = 0;   ///< executing now
  bool task_stop_ PNR_GUARDED_BY(task_mutex_) = false;
  std::exception_ptr task_error_ PNR_GUARDED_BY(task_mutex_);
};

/// The process-wide default pool every instrumented kernel uses. Sized on
/// first access from the PNR_THREADS environment variable (default 1 —
/// exact legacy serial behavior); reconfigured by set_default_threads
/// (the --threads flag of the bench/example binaries).
Pool& default_pool();

/// Resize the default pool (1 = serial). Safe to call between regions at
/// any time; not safe concurrently with running regions.
void set_default_threads(int threads);

}  // namespace pnr::exec
