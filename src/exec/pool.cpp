#include "exec/pool.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <string>

#include "util/prof.hpp"

namespace pnr::exec {

namespace {

/// Serial-forcing depth of this thread (SerialRegion nesting) and whether
/// this thread is currently executing pool chunks — as a worker, or as the
/// caller participating in its own region. Either way, nested parallel_*
/// calls must run inline: a worker has no pool to recurse into, and the
/// caller already holds the region lock.
thread_local int t_serial_depth = 0;
thread_local bool t_in_worker = false;

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

int env_default_threads() {
  // Read once at startup before any worker exists; nothing in-process
  // calls setenv. NOLINTNEXTLINE(concurrency-mt-unsafe)
  const char* s = std::getenv("PNR_THREADS");
  if (s == nullptr || *s == '\0') return 1;
  const int n = std::atoi(s);
  return std::clamp(n, 1, 256);
}

}  // namespace

std::int64_t num_chunks(std::int64_t n, const Chunking& ck) {
  if (n <= 0) return 0;
  const std::int64_t grain = std::max<std::int64_t>(1, ck.grain);
  std::int64_t chunks = (n + grain - 1) / grain;
  if (ck.max_chunks > 0) chunks = std::min(chunks, ck.max_chunks);
  return std::max<std::int64_t>(1, chunks);
}

std::pair<std::int64_t, std::int64_t> chunk_range(std::int64_t n,
                                                  std::int64_t chunks,
                                                  std::int64_t c) {
  PNR_ASSERT(chunks > 0 && c >= 0 && c < chunks);
  const std::int64_t base = n / chunks;
  const std::int64_t rem = n % chunks;
  const std::int64_t begin = c * base + std::min(c, rem);
  return {begin, begin + base + (c < rem ? 1 : 0)};
}

SerialRegion::SerialRegion() { ++t_serial_depth; }
SerialRegion::~SerialRegion() { --t_serial_depth; }

bool in_serial_context() { return t_serial_depth > 0 || t_in_worker; }

Pool::Pool(int threads) : target_threads_(std::max(1, threads)) {}

Pool::~Pool() { shutdown(); }

void Pool::shutdown() {
  // Region workers. Holding region_mutex_ here means teardown waits for an
  // in-flight region to finish instead of racing it — the same serialization
  // ensure_started() relies on when it reads workers_.
  {
    util::MutexLock region_guard(region_mutex_);
    if (!workers_.empty()) {
      {
        util::MutexLock lock(mutex_);
        stop_ = true;
      }
      work_cv_.notify_all();
      for (std::thread& w : workers_) w.join();
      workers_.clear();
      util::MutexLock lock(mutex_);
      stop_ = false;
    }
  }
  // Detached-task workers: let the queue drain (tasks may chain more tasks;
  // the loop re-evaluates), then stop and join. The pool stays usable —
  // the next submit() respawns workers.
  std::vector<std::thread> taskers;
  {
    util::MutexLock lock(task_mutex_);
    if (task_workers_.empty()) return;
    while (!task_queue_.empty() || tasks_active_ != 0)
      task_done_cv_.wait(task_mutex_);
    task_stop_ = true;
    taskers.swap(task_workers_);
  }
  task_cv_.notify_all();
  for (std::thread& t : taskers) t.join();
  util::MutexLock lock(task_mutex_);
  task_stop_ = false;
  task_idle_ = 0;
}

void Pool::resize(int threads) {
  shutdown();
  target_threads_ = std::max(1, threads);
}

void Pool::ensure_started() {
  if (!workers_.empty() || target_threads_ <= 1) return;
  workers_.reserve(static_cast<std::size_t>(target_threads_ - 1));
  // Capture the epoch at launch: after a shutdown()+restart the counter is
  // not zero, and a fresh worker assuming seen_epoch = 0 would "wake" into
  // a region that does not exist (stale chunk count, null region_fn_) and
  // corrupt the workers_in_region_ accounting. epoch_ cannot advance here
  // (it only changes under region_mutex_, which our caller run() holds),
  // but it is guarded by mutex_, so read it under that lock.
  std::uint64_t birth_epoch = 0;
  {
    util::MutexLock lock(mutex_);
    birth_epoch = epoch_;
  }
  for (int t = 0; t < target_threads_ - 1; ++t)
    workers_.emplace_back([this, birth_epoch] { worker_main(birth_epoch); });
}

std::uint64_t Pool::work_through(std::int64_t chunks,
                                 const std::function<void(std::int64_t)>& fn,
                                 bool measure) {
  std::uint64_t busy = 0;
  for (;;) {
    const std::int64_t c = next_chunk_.fetch_add(1, std::memory_order_relaxed);
    if (c >= chunks) break;
    try {
      if (measure) {
        const std::uint64_t t0 = now_ns();
        fn(c);
        busy += now_ns() - t0;
      } else {
        fn(c);
      }
    } catch (...) {
      util::MutexLock lock(mutex_);
      if (!error_) error_ = std::current_exception();
      // Skip the remaining chunks; already-running ones finish normally.
      next_chunk_.store(chunks, std::memory_order_relaxed);
    }
  }
  return busy;
}

void Pool::worker_main(std::uint64_t birth_epoch) {
  std::uint64_t seen_epoch = birth_epoch;
  for (;;) {
    std::int64_t chunks = 0;
    const std::function<void(std::int64_t)>* fn = nullptr;
    bool measure = false;
    {
      util::MutexLock lock(mutex_);
      while (!stop_ && epoch_ == seen_epoch) work_cv_.wait(mutex_);
      if (stop_) return;
      seen_epoch = epoch_;
      chunks = region_chunks_;
      fn = region_fn_;
      measure = region_measure_;
    }
    t_in_worker = true;
    const std::uint64_t busy = work_through(chunks, *fn, measure);
    t_in_worker = false;
    if (busy > 0) busy_ns_.fetch_add(busy, std::memory_order_relaxed);
    util::MutexLock lock(mutex_);
    if (--workers_in_region_ == 0) done_cv_.notify_one();
  }
}

void Pool::run(std::int64_t chunks,
               const std::function<void(std::int64_t)>& fn) {
  // One region at a time: concurrent callers (e.g. simulator ranks that did
  // not open a SerialRegion) queue here rather than corrupting the shared
  // region state.
  util::MutexLock region_guard(region_mutex_);
  ensure_started();
  const bool measure = prof::enabled();
  const std::uint64_t wall_start = measure ? now_ns() : 0;
  int participants = 1;
  {
    util::MutexLock lock(mutex_);
    region_chunks_ = chunks;
    region_fn_ = &fn;
    region_measure_ = measure;
    next_chunk_.store(0, std::memory_order_relaxed);
    busy_ns_.store(0, std::memory_order_relaxed);
    error_ = nullptr;
    workers_in_region_ = static_cast<int>(workers_.size());
    participants += workers_in_region_;
    ++epoch_;
  }
  work_cv_.notify_all();
  t_in_worker = true;
  const std::uint64_t own_busy = work_through(chunks, fn, measure);
  t_in_worker = false;

  std::exception_ptr error;
  {
    util::MutexLock lock(mutex_);
    // Wait for every signalled worker to leave the region so the next
    // region (and the destruction of `fn`) cannot race a stale claim loop.
    while (workers_in_region_ != 0) done_cv_.wait(mutex_);
    region_fn_ = nullptr;
    error = error_;
    error_ = nullptr;
  }
  if (measure) {
    const std::uint64_t wall = now_ns() - wall_start;
    const std::uint64_t busy =
        busy_ns_.load(std::memory_order_relaxed) + own_busy;
    const std::uint64_t capacity =
        wall * static_cast<std::uint64_t>(participants);
    prof::count("exec.tasks");
    prof::count("exec.chunks_run", chunks);
    prof::gauge_max("exec.threads", target_threads_);
    prof::count("exec.worker_busy_ns", static_cast<std::int64_t>(busy));
    prof::count("exec.worker_idle_ns",
                static_cast<std::int64_t>(capacity > busy ? capacity - busy
                                                          : 0));
  }
  if (error) std::rethrow_exception(error);
}

void Pool::submit(std::function<void()> task) {
  {
    util::MutexLock lock(task_mutex_);
    task_queue_.push_back(std::move(task));
    // Spawn another worker only when every existing one is busy and the
    // pool width allows it; a 1-thread pool still gets one task worker so
    // submit() is always asynchronous.
    if (static_cast<int>(task_workers_.size()) < target_threads_ &&
        task_idle_ == 0)
      task_workers_.emplace_back([this] { task_worker_main(); });
  }
  task_cv_.notify_one();
}

void Pool::wait_detached() {
  std::exception_ptr error;
  {
    util::MutexLock lock(task_mutex_);
    while (!task_queue_.empty() || tasks_active_ != 0)
      task_done_cv_.wait(task_mutex_);
    error = task_error_;
    task_error_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

void Pool::task_worker_main() {
  for (;;) {
    std::function<void()> task;
    {
      util::MutexLock lock(task_mutex_);
      ++task_idle_;
      while (!task_stop_ && task_queue_.empty()) task_cv_.wait(task_mutex_);
      --task_idle_;
      if (task_stop_) return;
      task = std::move(task_queue_.front());
      task_queue_.pop_front();
      ++tasks_active_;
    }
    t_in_worker = true;
    try {
      task();
    } catch (...) {
      util::MutexLock elock(task_mutex_);
      if (!task_error_) task_error_ = std::current_exception();
    }
    t_in_worker = false;
    prof::count("exec.detached_tasks");
    util::MutexLock lock(task_mutex_);
    if (--tasks_active_ == 0 && task_queue_.empty())
      task_done_cv_.notify_all();
  }
}

std::int64_t Pool::exclusive_scan(std::span<const std::int64_t> in,
                                  std::span<std::int64_t> out, Chunking ck) {
  PNR_REQUIRE(in.size() == out.size());
  const auto n = static_cast<std::int64_t>(in.size());
  const std::int64_t chunks = num_chunks(n, ck);
  if (chunks <= 1 || serial()) {
    std::int64_t acc = 0;
    for (std::int64_t i = 0; i < n; ++i) {
      out[static_cast<std::size_t>(i)] = acc;
      acc += in[static_cast<std::size_t>(i)];
    }
    return acc;
  }
  // Pass 1: per-chunk sums. Pass 2 (serial, cheap): scan the chunk sums.
  // Pass 3: per-chunk exclusive prefix fill seeded from the chunk offset.
  std::vector<std::int64_t> sums(static_cast<std::size_t>(chunks), 0);
  run(chunks, [&](std::int64_t c) {
    const auto [b, e] = chunk_range(n, chunks, c);
    std::int64_t acc = 0;
    for (std::int64_t i = b; i < e; ++i)
      acc += in[static_cast<std::size_t>(i)];
    sums[static_cast<std::size_t>(c)] = acc;
  });
  std::int64_t total = 0;
  for (std::int64_t c = 0; c < chunks; ++c) {
    const std::int64_t s = sums[static_cast<std::size_t>(c)];
    sums[static_cast<std::size_t>(c)] = total;
    total += s;
  }
  run(chunks, [&](std::int64_t c) {
    const auto [b, e] = chunk_range(n, chunks, c);
    std::int64_t acc = sums[static_cast<std::size_t>(c)];
    for (std::int64_t i = b; i < e; ++i) {
      out[static_cast<std::size_t>(i)] = acc;
      acc += in[static_cast<std::size_t>(i)];
    }
  });
  return total;
}

Pool& default_pool() {
  static Pool pool(env_default_threads());
  return pool;
}

void set_default_threads(int threads) { default_pool().resize(threads); }

}  // namespace pnr::exec
